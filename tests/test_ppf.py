"""Tests for the perceptron prefetch filter (PPF)."""

from repro.common.types import DemandAccess, PrefetchCandidate
from repro.memory.cache import PrefetchRecord
from repro.prefetchers import make_composite
from repro.selection.ppf import PPFSelection


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def candidate(line, prefetcher="stream", pc=0x400):
    return PrefetchCandidate(line=line, prefetcher=prefetcher, pc=pc)


def record(line, pc=0x400):
    return PrefetchRecord(
        prefetcher="stream", pc=pc, issue_cycle=0, ready_cycle=0, line=line
    )


class TestFiltering:
    def test_neutral_weights_pass_at_zero_threshold(self):
        ppf = PPFSelection(make_composite(), threshold=0)
        kept = ppf.filter_prefetches([candidate(5)], access(0))
        assert kept
        assert ppf.admitted == 1

    def test_aggressive_threshold_filters_untrained(self):
        ppf = PPFSelection(make_composite(), threshold=8)
        kept = ppf.filter_prefetches([candidate(5)], access(0))
        assert not kept
        assert ppf.filtered == 1

    def test_negative_feedback_learns_to_reject(self):
        ppf = PPFSelection(make_composite(), threshold=0)
        # Repeatedly issue and evict the same candidate shape unused.
        for _ in range(40):
            kept = ppf.filter_prefetches([candidate(5)], access(0))
            if not kept:
                break
            ppf.observe_prefetch_evicted(record(5))
        assert not ppf.filter_prefetches([candidate(5)], access(0))

    def test_positive_feedback_raises_weights(self):
        ppf = PPFSelection(make_composite(), threshold=0)
        kept = ppf.filter_prefetches([candidate(5)], access(0))
        assert kept
        features = ppf._features(candidate(5), access(0))
        before = ppf._sum(features)
        ppf.observe_prefetch_used(record(5), timely=True)
        assert ppf._sum(features) > before

    def test_conservative_recovers_after_mixed_feedback(self):
        conservative = PPFSelection(make_composite(), threshold=-4)
        aggressive = PPFSelection(make_composite(), threshold=8)
        # Same mild negative history; conservative keeps admitting longer.
        def drops(ppf):
            count = 0
            for _ in range(6):
                kept = ppf.filter_prefetches([candidate(5)], access(0))
                if kept:
                    ppf.observe_prefetch_evicted(record(5))
                else:
                    count += 1
            return count

        assert drops(aggressive) > drops(conservative)


class TestScheduling:
    def test_ipcp_underneath(self):
        ppf = PPFSelection(make_composite())
        decisions = ppf.allocate(access(0))
        assert len(decisions) == 3  # train-all, like IPCP

    def test_unknown_record_feedback_ignored(self):
        ppf = PPFSelection(make_composite())
        ppf.observe_prefetch_used(record(999), timely=True)
        ppf.observe_prefetch_evicted(record(998))  # no crash

    def test_storage_accounts_weights(self):
        ppf = PPFSelection(make_composite())
        assert ppf.storage_bits >= 6 * 256 * 5
