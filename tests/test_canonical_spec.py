"""Canonical spec-string round-trips across all four spec registries."""

import pytest

from repro.registry import (
    COMPOSITES,
    PREFETCHERS,
    SELECTORS,
    WORKLOADS,
    canonical_spec,
    parse_spec,
    spec_defaults,
)

KINDS = {
    "prefetcher": PREFETCHERS,
    "composite": COMPOSITES,
    "selector": SELECTORS,
    "workload": WORKLOADS,
}


def _render(value):
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "none"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class TestSweepAllRegistries:
    """Every registered name in every registry canonicalizes cleanly."""

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_bare_names_are_canonical(self, kind):
        for name in KINDS[kind].names():
            assert canonical_spec(kind, name) == name

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_spelled_out_defaults_strip(self, kind):
        """``name:param=<default>`` canonicalizes back to bare ``name``.

        Only parameters whose rendered spec form re-coerces to the same
        value participate (a string default ``"1"`` cannot be spelled in
        a spec without becoming int 1, so canonicalization keeps it).
        """
        from repro.registry import _coerce

        checked = 0
        for name in KINDS[kind].names():
            for key, default in spec_defaults(kind, name).items():
                if _coerce(_render(default)) != default:
                    continue
                if type(_coerce(_render(default))) is not type(default):
                    continue
                spec = f"{name}:{key}={_render(default)}"
                assert canonical_spec(kind, spec) == name, spec
                checked += 1
        if kind == "selector":
            assert checked > 0  # ipcp:degree=3 and friends must be swept

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_canonical_form_is_fixed_point(self, kind):
        """Canonicalizing a canonical spec is the identity."""
        for name in KINDS[kind].names():
            once = canonical_spec(kind, name)
            assert canonical_spec(kind, once) == once


class TestCanonicalization:
    def test_non_default_params_kept(self):
        assert canonical_spec("selector", "ipcp:degree=4") == "ipcp:degree=4"

    def test_default_params_stripped(self):
        assert canonical_spec("selector", "ipcp:degree=3") == "ipcp"

    def test_params_sorted(self):
        spec = canonical_spec(
            "selector", "bandit_ext:max_boost=7,conservative_degree=2"
        )
        assert spec == "bandit_ext:conservative_degree=2,max_boost=7"

    def test_mixed_default_and_non_default(self):
        spec = canonical_spec(
            "selector", "bandit_ext:conservative_degree=3,max_boost=7"
        )
        assert spec == "bandit_ext:max_boost=7"

    def test_workload_factory_defaults(self):
        name, params = parse_spec(canonical_spec("workload", "phased:period=2000"))
        assert name == "phased"
        defaults = spec_defaults("workload", "phased")
        for key, value in params.items():
            assert defaults.get(key) != value

    def test_var_keyword_factory_params_pass_through_sorted(self):
        # alecto's factory takes **params: nothing can be defaulted away,
        # but ordering still normalizes.
        spec = canonical_spec("selector", "alecto:fixed_degree=6,epoch=500")
        assert spec == "alecto:epoch=500,fixed_degree=6"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown selector"):
            canonical_spec("selector", "nonsense")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown spec kind"):
            canonical_spec("experiment", "fig01")

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError, match="malformed parameter"):
            canonical_spec("selector", "ipcp:degree")

    def test_synthetic_selector_full_roundtrip(self):
        """A selector with bool/float/str/int defaults strips exactly those."""

        def _factory(prefetchers, ctx, alpha=1, beta=2.5, gamma="x", delta=True):
            raise NotImplementedError  # never built in this test

        SELECTORS.add("_canontest", _factory)
        try:
            assert spec_defaults("selector", "_canontest") == {
                "alpha": 1, "beta": 2.5, "gamma": "x", "delta": True,
            }
            spelled = "_canontest:delta=true,alpha=1,beta=2.5,gamma=x"
            assert canonical_spec("selector", spelled) == "_canontest"
            kept = canonical_spec(
                "selector", "_canontest:delta=false,beta=2.5"
            )
            assert kept == "_canontest:delta=false"
        finally:
            SELECTORS._entries.pop("_canontest", None)
            SELECTORS._metadata.pop("_canontest", None)

    def test_bool_int_confusion_guard(self):
        """A default of ``True`` must not swallow an explicit ``1``."""

        def _factory(prefetchers, ctx, flag=True):
            raise NotImplementedError

        SELECTORS.add("_canonbool", _factory)
        try:
            # flag=1 coerces to int 1; int 1 == True but is not a bool,
            # so it must be kept, not stripped as "the default".
            assert (
                canonical_spec("selector", "_canonbool:flag=1")
                == "_canonbool:flag=1"
            )
            assert canonical_spec("selector", "_canonbool:flag=true") == "_canonbool"
        finally:
            SELECTORS._entries.pop("_canonbool", None)
            SELECTORS._metadata.pop("_canonbool", None)
