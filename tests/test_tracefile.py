"""Tests for the streaming trace file subsystem (``repro.trace.v1``)."""

import gzip
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import (
    FRAME_RECORDS,
    TRACE_MAGIC,
    TRACE_SCHEMA,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    read_info,
    write_trace,
)
from repro.workloads import get_profile

record_strategy = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=2**64 - 1),
    address=st.integers(min_value=0, max_value=2**64 - 1),
    access_type=st.sampled_from([AccessType.LOAD, AccessType.STORE]),
    nonmem_before=st.integers(min_value=0, max_value=2**32 - 1),
    dependent=st.booleans(),
)


def random_records(n, seed=0):
    rng = random.Random(seed)
    return [
        TraceRecord(
            pc=rng.getrandbits(48),
            address=rng.getrandbits(44),
            access_type=(
                AccessType.STORE if rng.random() < 0.25 else AccessType.LOAD
            ),
            nonmem_before=rng.randrange(0, 500),
            dependent=rng.random() < 0.1,
        )
        for _ in range(n)
    ]


class TestRoundTrip:
    @given(records=st.lists(record_strategy, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_write_read_identity(self, records, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "t.trace.gz")
        assert write_trace(path, records) == len(records)
        assert list(TraceReader(path)) == records

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_streams(self, tmp_path, seed):
        records = random_records(500, seed=seed)
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, records)
        assert list(TraceReader(path)) == records

    @pytest.mark.parametrize(
        "count", [0, 1, FRAME_RECORDS - 1, FRAME_RECORDS, FRAME_RECORDS + 1]
    )
    def test_frame_boundaries(self, tmp_path, count):
        records = random_records(count, seed=count)
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, records)
        assert list(TraceReader(path)) == records
        assert read_info(path)["count"] == count

    def test_profile_stream_round_trips(self, tmp_path):
        profile = get_profile("mcf")
        path = str(tmp_path / "mcf.trace.gz")
        write_trace(path, profile.stream(1500, seed=3))
        assert list(TraceReader(path)) == profile.generate(1500, seed=3)


class TestWriter:
    def test_meta_round_trips(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        meta = {"benchmark": "gcc", "accesses": 5, "seed": 1, "note": "x"}
        write_trace(path, random_records(5), meta=meta)
        reader = TraceReader(path)
        assert reader.meta == meta
        assert reader.schema == TRACE_SCHEMA

    def test_streaming_writer_counts(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        with TraceWriter(path) as writer:
            for record in random_records(7):
                writer.write(record)
            assert writer.count == 7

    def test_write_after_close_raises(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        writer = TraceWriter(path)
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write(random_records(1)[0])

    def test_close_idempotent(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        writer = TraceWriter(path)
        writer.close()
        writer.close()
        assert list(TraceReader(path)) == []

    def test_oversized_field_rejected(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        with TraceWriter(path) as writer:
            with pytest.raises(ValueError, match="v1 encoding"):
                writer.write(TraceRecord(pc=0, address=2**64))

    def test_unserializable_meta_fails_before_partial_file(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        with pytest.raises(TypeError):
            TraceWriter(str(path), meta={"bad": object()})

    def test_interrupted_write_leaves_loudly_truncated_file(self, tmp_path):
        # An exception mid-recording must NOT finalize: a short but
        # well-formed file would silently replay fewer records than the
        # recorded provenance claims.
        path = str(tmp_path / "t.trace.gz")
        with pytest.raises(RuntimeError):
            with TraceWriter(path, meta={"accesses": 10}) as writer:
                for record in random_records(3):
                    writer.write(record)
                raise RuntimeError("interrupted")
        with pytest.raises(TraceFormatError, match="truncated"):
            list(TraceReader(path))
        with pytest.raises(TraceFormatError, match="truncated"):
            read_info(path)


class TestReader:
    def test_reader_is_reiterable(self, tmp_path):
        records = random_records(50)
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, records)
        reader = TraceReader(path)
        assert list(reader) == records
        assert list(reader) == records  # baseline + selector run pattern
        assert reader.count == 50

    def test_reader_is_lazy(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, random_records(FRAME_RECORDS + 10))
        iterator = iter(TraceReader(path))
        first = next(iterator)
        assert isinstance(first, TraceRecord)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            TraceReader(str(tmp_path / "absent.trace.gz"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"NOTATRACE" + b"\n")
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(str(path))

    def test_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(TRACE_MAGIC)
            fh.write(json.dumps({"schema": "repro.trace.v9", "meta": {}}).encode())
            fh.write(b"\n")
        with pytest.raises(TraceFormatError, match="unsupported trace schema"):
            TraceReader(str(path))

    def test_truncated_frames_detected(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, random_records(20))
        payload = gzip.decompress(open(path, "rb").read())
        clipped = tmp_path / "clipped.trace.gz"
        with gzip.open(clipped, "wb") as fh:
            fh.write(payload[:-40])  # drop the terminator + footer + tail
        with pytest.raises(TraceFormatError, match="truncated"):
            list(TraceReader(str(clipped)))

    def test_stripped_footer_detected(self, tmp_path):
        # The footer is the integrity cross-check on the payload; a
        # doctored file with it removed must not read cleanly.
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, random_records(8))
        payload = gzip.decompress(open(path, "rb").read())
        stripped = payload[: payload.rindex(b'{"count"')]
        bad = tmp_path / "bad.trace.gz"
        with gzip.open(bad, "wb") as fh:
            fh.write(stripped)
        with pytest.raises(TraceFormatError, match="missing count footer"):
            list(TraceReader(str(bad)))
        with pytest.raises(TraceFormatError, match="missing count footer"):
            read_info(str(bad))

    def test_footer_count_mismatch_detected(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, random_records(8))
        payload = gzip.decompress(open(path, "rb").read())
        doctored = payload.replace(b'{"count": 8}', b'{"count": 9}')
        assert doctored != payload
        bad = tmp_path / "bad.trace.gz"
        with gzip.open(bad, "wb") as fh:
            fh.write(doctored)
        with pytest.raises(TraceFormatError, match="footer declares"):
            list(TraceReader(str(bad)))


class TestInfo:
    def test_info_reports_meta_and_count(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        write_trace(path, random_records(123), meta={"benchmark": "lbm"})
        info = read_info(path)
        assert info["schema"] == TRACE_SCHEMA
        assert info["count"] == 123
        assert info["meta"]["benchmark"] == "lbm"
        assert info["record_bytes"] == 21
