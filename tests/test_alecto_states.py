"""Tests for the UI / IA / IB state representation."""

import pytest

from repro.selection.alecto.states import PrefetcherState, StateKind


class TestConstruction:
    def test_ui(self):
        state = PrefetcherState.ui()
        assert state.is_ui
        assert state.receives_requests
        assert repr(state) == "UI"

    def test_ia(self):
        state = PrefetcherState.ia(3)
        assert state.is_aggressive
        assert state.level == 3
        assert state.receives_requests
        assert repr(state) == "IA_3"

    def test_ib(self):
        state = PrefetcherState.ib(-5)
        assert state.is_blocked
        assert state.level == -5
        assert not state.receives_requests
        assert repr(state) == "IB_-5"

    def test_ia_rejects_negative(self):
        with pytest.raises(ValueError):
            PrefetcherState.ia(-1)

    def test_ib_rejects_positive(self):
        with pytest.raises(ValueError):
            PrefetcherState.ib(1)

    def test_kind_enum(self):
        assert PrefetcherState.ui().kind is StateKind.UI
        assert PrefetcherState.ia().kind is StateKind.IA
        assert PrefetcherState.ib().kind is StateKind.IB

    def test_exactly_one_predicate_true(self):
        for state in (PrefetcherState.ui(), PrefetcherState.ia(2), PrefetcherState.ib(-1)):
            assert [state.is_ui, state.is_aggressive, state.is_blocked].count(True) == 1
