"""End-to-end tests for fault-tolerant suite execution.

Every recovery path is driven by the deterministic fault-injection
harness (:mod:`repro.faults`), so these tests exercise exactly what a
worker OOM, a hung cell, or a flaky filesystem would — on demand and
reproducibly.  The invariant pinned throughout: **recovery never changes
results**.  Rows produced via retries, pool respawns, and resumed runs
are byte-identical to a fault-free run.
"""

import dataclasses
import json
import os
import time

import pytest

from repro import faults
from repro.experiments.runner import (
    DispatchStats,
    RetryPolicy,
    SuiteExecutionError,
    SuiteRunner,
    _evict_pool,
)
from repro.registry import EXPERIMENTS
from repro.store import ResultStore, run_suite

#: Shrinks fig01/fig08 to test scale (also part of the store key).
TINY = {"accesses": 120, "seed": 1}


def _crash_on_first_attempt(attempt):
    """Pool-worker payload: SIGKILL self on the first dispatch only."""
    import signal

    if attempt == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return "computed"


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture
def fresh_pools():
    """Evict cached pools so workers fork with the test's environment.

    Pool workers read ``REPRO_FAULTS`` from the environment they
    inherited at fork; a pool cached by an earlier test predates the
    variable and would never arm the plan.
    """
    for jobs in (2, 3, 4):
        _evict_pool(jobs)
    yield
    for jobs in (2, 3, 4):
        _evict_pool(jobs)


@pytest.fixture
def fault_env(monkeypatch, fresh_pools):
    """Set ``REPRO_FAULTS`` for the test (and fork fresh pools)."""

    def arm(spec):
        monkeypatch.setenv(faults.FAULTS_ENV, spec)

    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    return arm


def rows_of(report):
    return json.dumps(
        [result.rows for result in report.results], default=float
    )


FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05)


class TestSerialRetry:
    def test_injected_failure_retries_to_success(self, fault_env, store):
        baseline = run_suite(["fig01"], overrides=TINY, store=None)
        # attempts=1: the first try always fails, the retry always works.
        fault_env("cell_exception:p=1:attempts=1")
        report = run_suite(["fig01"], overrides=TINY, policy=FAST)
        assert report.computed == ["fig01"]
        assert report.retries == 1
        assert report.attempts["experiment/fig01"] == 2
        assert rows_of(report) == rows_of(baseline)

    def test_exhausted_attempts_raise_with_cause(self, fault_env):
        fault_env("cell_exception:p=1")
        with pytest.raises(SuiteExecutionError, match="cell_exception"):
            run_suite(["fig01"], overrides=TINY, policy=FAST)

    def test_keep_going_records_structured_failure(self, fault_env, store):
        fault_env("cell_exception:p=1")
        report = run_suite(
            ["fig01"], overrides=TINY, store=store, keep_going=True,
            policy=FAST,
        )
        assert report.failed == ["fig01"]
        assert report.results == []
        assert report.status == "failed"
        (failure,) = report.failures
        assert failure.label == "experiment/fig01"
        assert failure.attempts == FAST.max_attempts
        assert failure.kind == "exception"
        assert failure.site == "cell_exception"
        assert "cell_exception" in failure.error
        assert len(failure.traceback_digest) == 16

    def test_partial_run_keeps_the_survivors(self, store):
        broken = EXPERIMENTS.get("fig08")
        meta = EXPERIMENTS.metadata("fig08")

        def explode(**kwargs):
            raise RuntimeError("injected failure")

        EXPERIMENTS.add(
            "fig08", dataclasses.replace(broken, fn=explode), **meta
        )
        try:
            report = run_suite(
                ["fig01", "fig08"], overrides=TINY, store=store,
                keep_going=True, policy=FAST,
            )
        finally:
            EXPERIMENTS.add("fig08", broken, **meta)
        assert report.computed == ["fig01"]
        assert report.failed == ["fig08"]
        assert report.status == "partial"
        assert len(report.results) == 1  # fig01's rows survive


class TestJournal:
    def test_clean_run_writes_clean_journal(self, store):
        report = run_suite(["fig01"], overrides=TINY, store=store)
        assert report.journal_path is not None
        assert os.path.dirname(report.journal_path) == os.path.join(
            store.root, "journal"
        )
        doc = json.load(open(report.journal_path))
        assert doc["schema"] == "repro.suite-journal.v1"
        assert doc["status"] == "clean"
        assert doc["computed"] == ["fig01"]
        assert doc["failures"] == []
        assert doc["policy"]["max_attempts"] == 3

    def test_partial_journal_carries_failures(self, fault_env, store):
        fault_env("cell_exception:p=1")
        report = run_suite(
            ["fig01"], overrides=TINY, store=store, keep_going=True,
            policy=FAST,
        )
        doc = json.load(open(report.journal_path))
        assert doc["status"] == "failed"
        assert doc["failed"] == ["fig01"]
        assert doc["failures"][0]["site"] == "cell_exception"
        assert doc["failures"][0]["attempts"] == FAST.max_attempts
        assert doc["faults"] == "cell_exception:p=1"

    def test_aborted_run_still_journals(self, fault_env, store):
        fault_env("cell_exception:p=1")
        with pytest.raises(SuiteExecutionError):
            run_suite(["fig01"], overrides=TINY, store=store, policy=FAST)
        journal_dir = os.path.join(store.root, "journal")
        (name,) = os.listdir(journal_dir)
        doc = json.load(open(os.path.join(journal_dir, name)))
        assert doc["status"] == "aborted"
        assert doc["error"]

    def test_journal_ids_unique_within_process(self, store):
        first = run_suite(["fig01"], overrides=TINY, store=store)
        second = run_suite(["fig01"], overrides=TINY, store=store)
        assert first.journal_path != second.journal_path


class TestPoolRecovery:
    def test_worker_crash_respawns_and_completes(self, fault_env, store):
        baseline = run_suite(
            ["fig01", "fig08"], overrides=TINY, store=None, policy=FAST
        )
        # Every experiment's first dispatch SIGKILLs its worker; the
        # re-dispatch (attempt 1) runs clean.
        fault_env("worker_crash:p=1:attempts=1")
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=FAST,
        )
        assert sorted(report.computed) == ["fig01", "fig08"]
        assert report.pool_respawns >= 1
        assert report.status == "clean"
        assert rows_of(report) == rows_of(baseline)

    def test_crash_does_not_charge_attempts(self, fault_env, store):
        fault_env("worker_crash:p=1:attempts=1")
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=RetryPolicy(max_attempts=1, backoff_base=0.01),
        )
        # max_attempts=1 leaves no retry budget, yet the run completes:
        # a crash is charged to the respawn budget, not to the task.
        assert sorted(report.computed) == ["fig01", "fig08"]

    def test_respawn_budget_bounds_crash_loops(self, fault_env, store):
        fault_env("worker_crash:p=1")  # every dispatch dies, forever
        with pytest.raises(SuiteExecutionError, match="respawn budget"):
            run_suite(
                ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
                policy=RetryPolicy(max_pool_respawns=2, backoff_base=0.01),
            )

    def test_respawn_budget_exhaustion_is_journalled(self, fault_env, store):
        """The pool-budget abort must land in the journal's failure list.

        The journal is written from ``stats.failures`` — if the budget
        failures were only carried by the raised exception, the journal
        would record ``status: "aborted"`` with an empty failure list
        for exactly the failure mode it exists to post-mortem.
        """
        fault_env("worker_crash:p=1")
        with pytest.raises(SuiteExecutionError, match="respawn budget"):
            run_suite(
                ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
                policy=RetryPolicy(max_pool_respawns=1, backoff_base=0.01),
            )
        journal_dir = os.path.join(store.root, "journal")
        docs = [
            json.load(open(os.path.join(journal_dir, name)))
            for name in os.listdir(journal_dir)
        ]
        aborted = [doc for doc in docs if doc["status"] == "aborted"]
        assert aborted, "abort was not journalled"
        failures = aborted[-1]["failures"]
        assert failures, "pool-budget abort journalled an empty failure list"
        assert all(f["kind"] == "pool" for f in failures)
        assert all("respawn budget" in f["error"] for f in failures)

    def test_pool_private_processes_attribute_exists(self):
        """Pin the private map ``_terminate_pool`` kills stragglers with.

        Straggler cancellation reaches into
        ``ProcessPoolExecutor._processes``; if a CPython release renames
        it, deadline enforcement degrades to ``shutdown(wait=False)`` —
        which never interrupts a running worker.  Fail loudly here
        instead of silently leaking stuck processes.
        """
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=1)
        try:
            assert pool.submit(os.getpid).result() > 0
            processes = getattr(pool, "_processes", None)
            assert processes, "ProcessPoolExecutor._processes went missing"
        finally:
            pool.shutdown()

    def test_hard_kill_resume_is_byte_identical(self, fault_env, store):
        """SIGKILL a pool worker mid-suite; rerun; rows must not move.

        The first run is killed outright (respawn budget 0, so the crash
        aborts it, as a ctrl-C or OOM-killed orchestrator would).  The
        warm rerun over the same store completes from whatever was
        absorbed and its rows are byte-identical to a fault-free run.
        """
        baseline = run_suite(
            ["fig01", "fig08"], overrides=TINY, store=None, policy=FAST
        )
        fault_env("worker_crash:p=1:attempts=1")
        with pytest.raises(SuiteExecutionError):
            run_suite(
                ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
                policy=RetryPolicy(max_pool_respawns=0, backoff_base=0.01),
            )
        # The interrupted run journaled its abort.
        journal_dir = os.path.join(store.root, "journal")
        docs = [
            json.load(open(os.path.join(journal_dir, name)))
            for name in os.listdir(journal_dir)
        ]
        assert any(doc["status"] == "aborted" for doc in docs)
        # Fault off, fresh pools: the resumed run completes cleanly.
        os.environ.pop(faults.FAULTS_ENV, None)
        _evict_pool(2)
        resumed = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=FAST,
        )
        assert sorted(resumed.cached + resumed.computed) == [
            "fig01", "fig08"
        ]
        assert rows_of(resumed) == rows_of(baseline)

    def test_warm_store_never_dispatches_under_crash_plan(
        self, fault_env, store
    ):
        # Warm the store, then crash every dispatch: nothing is left to
        # dispatch, so the armed plan never gets a worker to kill.
        warm = run_suite(["fig01", "fig08"], overrides=TINY, store=store)
        assert sorted(warm.computed) == ["fig01", "fig08"]
        fault_env("worker_crash:p=1")
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=FAST,
        )
        assert sorted(report.cached) == ["fig01", "fig08"]
        assert report.computed == []

    def test_absorbed_tasks_skip_re_dispatch(self, fresh_pools):
        """A crashed task the store absorbed meanwhile is not re-run.

        Drives :func:`_dispatch_pool` directly: the task's first
        dispatch kills its worker; by re-dispatch time the ``absorbed``
        callback (the store's stand-in) already has the value, so the
        dispatcher yields it as ``absorbed`` without re-executing.
        """
        from repro.experiments.runner import _dispatch_pool, _Task

        task = _Task(
            key="k",
            label="cell/x/y",
            fn=_crash_on_first_attempt,
            make_args=lambda attempt: (attempt,),
        )
        stats = DispatchStats()
        outcomes = list(
            _dispatch_pool(
                2, [task], FAST, stats,
                absorbed=lambda t: "stored-value" if t.dispatches else None,
            )
        )
        assert outcomes == [(task, "absorbed", "stored-value")]
        assert stats.pool_respawns >= 1
        assert stats.failures == []


class TestDeadlines:
    def test_stalled_experiment_is_requeued(self, fault_env, store):
        baseline = run_suite(
            ["fig01", "fig08"], overrides=TINY, store=None, policy=FAST
        )
        # First dispatch of each experiment sleeps 30s; the 3s deadline
        # cancels it, the pool recycles, and the retry runs stall-free.
        fault_env("cell_stall:p=1:attempts=1:s=30")
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=RetryPolicy(
                experiment_deadline=3.0, backoff_base=0.01, backoff_max=0.05
            ),
        )
        assert sorted(report.computed) == ["fig01", "fig08"]
        assert report.deadline_requeues >= 1
        assert rows_of(report) == rows_of(baseline)

    def test_queued_tasks_are_not_falsely_expired(self, fresh_pools):
        """Deadline clocks start at execution, not at enqueue.

        One worker, four 0.4s tasks, a 1.0s per-task deadline: the tail
        task waits ~1.2s for its slot — longer than its deadline — so a
        dispatcher that stamps ``started`` at submit and queues all four
        at once would falsely expire healthy tasks (charging attempts
        and recycling the pool under the in-flight ones).  Keeping at
        most ``jobs`` tasks in flight makes every task finish clean.
        """
        from repro.experiments.runner import _dispatch_pool, _Task

        tasks = [
            _Task(
                key=index,
                label=f"cell/sleep/{index}",
                fn=time.sleep,
                make_args=lambda attempt, index=index: (0.4,),
                deadline=1.0,
            )
            for index in range(4)
        ]
        stats = DispatchStats()
        outcomes = list(_dispatch_pool(1, tasks, FAST, stats))
        assert [status for _, status, _ in outcomes] == ["ok"] * 4
        assert stats.deadline_requeues == 0
        assert stats.retries == 0
        assert stats.failures == []

    def test_deadline_exhaustion_is_a_structured_failure(
        self, fault_env, store
    ):
        fault_env("cell_stall:p=1:s=30")  # stalls on every attempt
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            keep_going=True,
            policy=RetryPolicy(
                max_attempts=2, experiment_deadline=1.0,
                backoff_base=0.01, backoff_max=0.05,
            ),
        )
        assert sorted(report.failed) == ["fig01", "fig08"]
        assert all(f.kind == "deadline" for f in report.failures)
        assert report.status == "failed"


class TestIOFaults:
    def test_store_put_retries_through_io_fault(self, fault_env, store):
        fault_env("store_put_io:p=1:attempts=1")
        report = run_suite(["fig01"], overrides=TINY, store=store)
        assert report.computed == ["fig01"]
        assert store.stats.put_retries >= 1
        assert store.verify() == []  # every retried write landed intact

    def test_store_put_io_exhaustion_propagates(self, fault_env, tmp_path):
        fault_env("store_put_io:p=1")
        store = ResultStore(str(tmp_path / "s"))
        from repro.store.keys import StoreKey

        with pytest.raises(OSError, match="store_put_io"):
            store.put(StoreKey("cell", {"k": 1}), {"v": 2})
        assert store.stats.puts == 0

    def test_trace_read_io_fires_in_open_trace(self, fault_env, tmp_path):
        from repro.cpu.tracefile import open_trace, write_trace
        from repro.workloads import get_profile

        path = str(tmp_path / "t.trace.gz")
        write_trace(path, get_profile("mcf").generate(50, seed=1))
        fault_env("trace_read_io:p=1:attempts=1")
        with pytest.raises(OSError, match="trace_read_io"):
            open_trace(path)
        # At ambient attempt 1 (a retried work unit) the site is past
        # its attempts gate and the open succeeds.
        with faults.attempt_context(1):
            assert open_trace(path).meta is not None


class TestDispatcherDeterminism:
    def test_retried_rows_byte_identical_cell_grain(self, fault_env, store):
        """Cell-grain fan-out under injected cell failures: same rows."""
        from repro.workloads import get_profile

        profiles = {"gcc": get_profile("gcc"), "mcf": get_profile("mcf")}
        clean = SuiteRunner(jobs=1).speedup_suite(
            profiles, ["ipcp"], accesses=150, seed=1
        )
        fault_env("cell_exception:p=0.5:seed=3:attempts=2")
        faulted = SuiteRunner(jobs=2, policy=FAST).speedup_suite(
            profiles, ["ipcp"], accesses=150, seed=1
        )
        assert json.dumps(faulted, default=float) == json.dumps(
            clean, default=float
        )

    def test_backoff_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0,
            backoff_jitter=0.25,
        )
        delays = [policy.backoff_delay(n, "cell/gcc/alecto") for n in (1, 2, 3, 4, 5)]
        assert delays == [
            policy.backoff_delay(n, "cell/gcc/alecto") for n in (1, 2, 3, 4, 5)
        ]
        for failures, delay in enumerate(delays, start=1):
            base = min(1.0, 0.1 * 2.0 ** (failures - 1))
            assert base * 0.75 <= delay <= base * 1.25
        # distinct tokens de-synchronize
        assert policy.backoff_delay(1, "a") != policy.backoff_delay(1, "b")

    def test_acceptance_spec_full_suite(self, fault_env, store):
        """The ISSUE's acceptance spec: probabilistic crash+exception
        injection over a multi-experiment pool run converges to rows
        byte-identical to a fault-free run."""
        names = ["fig01", "abl_epoch"]
        baseline = run_suite(names, overrides=TINY, store=None, policy=FAST)
        fault_env("worker_crash:p=0.2:seed=1,cell_exception:p=0.1:seed=2")
        report = run_suite(
            names, overrides=TINY, jobs=2, store=store, keep_going=True,
            policy=FAST,
        )
        assert report.failed == []
        assert sorted(report.computed) == sorted(names)
        assert rows_of(report) == rows_of(baseline)


class TestStatsPlumbing:
    def test_dispatch_stats_flow_into_report(self, fault_env, store):
        fault_env("cell_exception:p=1:attempts=1")
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store,
            policy=FAST,
        )
        assert report.retries == 2  # one per experiment
        assert report.attempts == {
            "experiment/fig01": 2,
            "experiment/fig08": 2,
        }

    def test_caller_supplied_stats_accumulate(self, fault_env):
        fault_env("cell_exception:p=1:attempts=1")
        stats = DispatchStats()
        runner = SuiteRunner(jobs=1, policy=FAST)
        from repro.experiments.runner import resolve_experiments

        resolved = resolve_experiments(["fig01"], overrides=TINY)
        list(runner.run_resolved(resolved, stats=stats))
        assert stats.retries == 1
        assert stats.failures == []
