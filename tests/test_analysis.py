"""Tests for the reporting helpers."""

import pytest

from repro.analysis import (
    relative_improvement,
    rows_to_csv,
    rows_to_markdown,
    speedup_statistics,
)

ROWS = {
    "bench_a": {"ipcp": 1.1, "alecto": 1.3},
    "bench_b": {"ipcp": 1.0, "alecto": 1.2},
    "Geomean": {"ipcp": 1.05, "alecto": 1.25},
}


class TestCSV:
    def test_header_and_rows(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "name,ipcp,alecto"
        assert lines[1].startswith("bench_a,1.1,1.3")

    def test_empty(self):
        assert rows_to_csv({}) == ""

    def test_missing_cells_blank(self):
        text = rows_to_csv({"a": {"x": 1.0}, "b": {"y": 2.0}})
        assert "1.0," in text or ",2.0" in text


class TestMarkdown:
    def test_structure(self):
        text = rows_to_markdown(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| name |")
        assert lines[1].startswith("|---")
        assert "| bench_a | 1.100 | 1.300 |" in text

    def test_empty(self):
        assert rows_to_markdown({}) == "(empty)"


class TestStatistics:
    def test_basic(self):
        stats = speedup_statistics([1.0, 2.0, 4.0])
        assert stats["count"] == 3
        assert stats["geomean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["median"] == 2.0

    def test_wins_losses(self):
        stats = speedup_statistics([0.9, 1.1, 1.2])
        assert stats["wins"] == 2
        assert stats["losses"] == 1

    def test_empty(self):
        assert speedup_statistics([]) == {"count": 0}


class TestRelativeImprovement:
    def test_per_row(self):
        improvements = relative_improvement(ROWS, "alecto", "ipcp")
        assert improvements["bench_a"] == pytest.approx(1.3 / 1.1 - 1)
        assert "Geomean" not in improvements  # skipped by default

    def test_custom_skip(self):
        improvements = relative_improvement(ROWS, "alecto", "ipcp", skip=())
        assert "Geomean" in improvements
