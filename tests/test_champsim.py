"""Tests for ChampSim trace ingestion (repro.cpu.champsim)."""

import gzip
import os

import pytest

from repro.common.types import AccessType
from repro.cpu.champsim import (
    CHAMPSIM_RECORD,
    ChampSimReader,
    import_trace,
    iter_champsim,
    write_champsim,
)
from repro.cpu.tracefile import TraceFormatError, open_trace
from repro.cpu.trace import TraceRecord
from repro.workloads import get_profile


def _records(n=300, benchmark="gcc", seed=1):
    return get_profile(benchmark).generate(n, seed=seed)


class TestChampSimCodec:
    def test_record_is_64_bytes(self):
        assert CHAMPSIM_RECORD.size == 64

    @pytest.mark.parametrize("suffix", ["", ".gz", ".xz"])
    def test_round_trip_per_compression(self, tmp_path, suffix):
        records = _records(120)
        path = str(tmp_path / f"t.champsim{suffix}")
        write_champsim(path, records)
        back = list(iter_champsim(path))
        assert [(r.pc, r.address, r.access_type, r.nonmem_before)
                for r in back] == [
            (r.pc, r.address, r.access_type, r.nonmem_before)
            for r in records
        ]

    def test_instruction_count_matches_trace_semantics(self, tmp_path):
        records = _records(100)
        path = str(tmp_path / "t.champsim.gz")
        instructions = write_champsim(path, records)
        assert instructions == sum(r.instructions for r in records)

    def test_loads_and_stores_preserved(self, tmp_path):
        records = [
            TraceRecord(pc=0x400, address=0x1000,
                        access_type=AccessType.LOAD, nonmem_before=2),
            TraceRecord(pc=0x404, address=0x2040,
                        access_type=AccessType.STORE, nonmem_before=0),
        ]
        path = str(tmp_path / "t.champsim")
        write_champsim(path, records)
        back = list(iter_champsim(path))
        assert back[0].access_type is AccessType.LOAD
        assert back[1].access_type is AccessType.STORE
        assert back[0].nonmem_before == 2

    def test_multi_slot_instruction_emits_multiple_records(self, tmp_path):
        # One instruction with two loads and one store -> three records,
        # loads first (ChampSim's execute order).
        path = str(tmp_path / "t.champsim")
        with open(path, "wb") as fh:
            fh.write(CHAMPSIM_RECORD.pack(
                0x400, 0, 0, 0, 0, 0, 0, 0, 0,
                0x3000, 0,            # destination_memory (store)
                0x1000, 0x2000, 0, 0,  # source_memory (loads)
            ))
        back = list(iter_champsim(path))
        assert [(r.address, r.access_type) for r in back] == [
            (0x1000, AccessType.LOAD),
            (0x2000, AccessType.LOAD),
            (0x3000, AccessType.STORE),
        ]

    def test_truncated_file_raises(self, tmp_path):
        path = str(tmp_path / "t.champsim")
        write_champsim(path, _records(20))
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-7])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(iter_champsim(path))

    def test_reader_is_reiterable(self, tmp_path):
        path = str(tmp_path / "t.champsim.gz")
        write_champsim(path, _records(50))
        reader = ChampSimReader(path)
        assert list(reader) == list(reader)

    def test_reader_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            ChampSimReader(str(tmp_path / "nope.champsim"))


class TestImport:
    def test_import_champsim_end_to_end(self, tmp_path):
        records = _records(200)
        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, records)
        workload = import_trace(
            src, name="demo", directory=str(tmp_path / "imports"),
            register=False,
        )
        assert workload.name == "demo"
        assert workload.suite == "imported"
        assert workload.accesses == 200
        got = workload.generate(200)
        assert [(r.pc, r.address, r.access_type, r.nonmem_before)
                for r in got] == [
            (r.pc, r.address, r.access_type, r.nonmem_before)
            for r in records
        ]

    def test_import_trace_v1_source(self, tmp_path):
        from repro.cpu.tracefile import write_trace

        records = _records(150)
        src = str(tmp_path / "src.trace.gz")
        write_trace(src, records, meta={"benchmark": "gcc"})
        workload = import_trace(
            src, name="fromv1", directory=str(tmp_path / "imports"),
            register=False,
        )
        assert workload.meta["source_format"] == "repro.trace.v1"
        # v1 sources keep the dependent flag (ChampSim ones cannot).
        assert [r.dependent for r in workload.generate(150)] == [
            r.dependent for r in records
        ]

    def test_import_limit(self, tmp_path):
        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(300))
        workload = import_trace(
            src, name="trimmed", directory=str(tmp_path / "i"),
            limit=100, register=False,
        )
        assert workload.accesses == 100

    def test_import_provenance_meta(self, tmp_path):
        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(80))
        workload = import_trace(
            src, directory=str(tmp_path / "i"), register=False
        )
        meta = workload.meta
        assert meta["source_file"] == "demo.champsim.gz"
        assert len(meta["source_sha256"]) == 64
        assert 0 < meta["mem_ratio"] <= 1
        assert meta["benchmark"] == "demo"  # suffixes stripped

    def test_import_empty_raises_and_leaves_nothing(self, tmp_path):
        src = str(tmp_path / "empty.champsim")
        open(src, "wb").close()
        out_dir = str(tmp_path / "i")
        with pytest.raises(TraceFormatError, match="no memory accesses"):
            import_trace(src, directory=out_dir, register=False)
        assert os.listdir(out_dir) == []

    def test_wrap_around_and_empty_request(self, tmp_path):
        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(50))
        workload = import_trace(
            src, directory=str(tmp_path / "i"), register=False
        )
        wrapped = workload.generate(120)
        assert len(wrapped) == 120
        assert wrapped[50:100] == wrapped[:50]  # replays from the start
        assert workload.generate(0) == []

    def test_repr_is_content_addressed_not_path_addressed(self, tmp_path):
        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(60))
        a = import_trace(src, name="same", directory=str(tmp_path / "a"),
                         register=False)
        b = import_trace(src, name="same", directory=str(tmp_path / "b"),
                         register=False)
        assert repr(a) == repr(b)
        assert str(tmp_path) not in repr(a)


class TestRegistration:
    def test_registration_and_rediscovery(self, tmp_path):
        from repro.cpu.champsim import register_imported_traces
        from repro.registry import SUITES, WORKLOADS

        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(70))
        imports = str(tmp_path / "imports")
        workload = import_trace(src, name="zz_imported", directory=imports)
        try:
            assert "imported/zz_imported" in WORKLOADS
            assert "zz_imported" in SUITES.get("imported")
            # A fresh scan (what a new process does) re-registers it.
            found = register_imported_traces(imports)
            assert [w.name for w in found] == ["zz_imported"]
        finally:
            from repro.cpu.champsim import IMPORTED_PROFILES

            IMPORTED_PROFILES.pop("zz_imported", None)
            for key in ("zz_imported", "imported/zz_imported"):
                WORKLOADS._entries.pop(key, None)
                WORKLOADS._metadata.pop(key, None)

    def test_reimport_same_name_refreshes_flat_registration(self, tmp_path):
        # Re-importing different content under the same name must not
        # leave the flat name serving the stale TraceWorkload (its
        # meta/repr would describe the old content in store keys).
        from repro.registry import WORKLOADS, build_workload

        first = str(tmp_path / "a.champsim.gz")
        second = str(tmp_path / "b.champsim.gz")
        write_champsim(first, _records(30, seed=1))
        write_champsim(second, _records(60, seed=2))
        imports = str(tmp_path / "i")
        import_trace(first, name="zz_re", directory=imports)
        try:
            assert build_workload("zz_re").accesses == 30
            refreshed = import_trace(second, name="zz_re", directory=imports)
            assert build_workload("zz_re") is refreshed
            assert build_workload("zz_re").accesses == 60
            assert build_workload("imported/zz_re") is refreshed
        finally:
            from repro.cpu.champsim import IMPORTED_PROFILES

            IMPORTED_PROFILES.pop("zz_re", None)
            for key in ("zz_re", "imported/zz_re"):
                WORKLOADS._entries.pop(key, None)
                WORKLOADS._metadata.pop(key, None)

    def test_import_cli_hints_qualified_name_for_shadowed_flat(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.registry import WORKLOADS

        src = str(tmp_path / "mcf.champsim.gz")
        write_champsim(src, _records(30))
        try:
            assert main([
                "trace", "import", src, "--name", "mcf",
                "--dir", str(tmp_path / "i"),
            ]) == 0
            out = capsys.readouterr().out
            assert "repro run imported/mcf" in out
        finally:
            from repro.cpu.champsim import IMPORTED_PROFILES

            IMPORTED_PROFILES.pop("mcf", None)
            WORKLOADS._entries.pop("imported/mcf", None)
            WORKLOADS._metadata.pop("imported/mcf", None)

    def test_imported_flat_name_never_shadows_builtin(self, tmp_path):
        from repro.registry import WORKLOADS, build_workload

        src = str(tmp_path / "mcf.champsim.gz")
        write_champsim(src, _records(30))
        import_trace(src, name="mcf", directory=str(tmp_path / "i"))
        try:
            assert build_workload("mcf").suite == "spec06"
            assert build_workload("imported/mcf").suite == "imported"
        finally:
            from repro.cpu.champsim import IMPORTED_PROFILES

            IMPORTED_PROFILES.pop("mcf", None)
            WORKLOADS._entries.pop("imported/mcf", None)
            WORKLOADS._metadata.pop("imported/mcf", None)

    def test_scan_skips_corrupt_trace(self, tmp_path, capsys):
        from repro.cpu.champsim import register_imported_traces

        imports = tmp_path / "imports"
        imports.mkdir()
        (imports / "bad.trace.gz").write_bytes(gzip.compress(b"not a trace"))
        assert register_imported_traces(str(imports)) == []
        assert "skipping unreadable" in capsys.readouterr().err


class TestSimulation:
    def test_imported_trace_simulates_under_selector(self, tmp_path):
        from repro.experiments.common import make_selector
        from repro.sim import simulate

        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, get_profile("hash_join").generate(800, seed=1))
        workload = import_trace(
            src, directory=str(tmp_path / "i"), register=False
        )
        baseline = simulate(workload.generate(800), None, name=workload.name)
        result = simulate(
            workload.generate(800), make_selector("alecto"),
            name=workload.name,
        )
        assert result.ipc > 0 and baseline.ipc > 0
        assert result.metrics.issued > 0

    def test_imported_trace_rows_deterministic(self, tmp_path):
        from repro.experiments.runner import replay_experiment

        src = str(tmp_path / "demo.champsim.gz")
        write_champsim(src, _records(300))
        workload = import_trace(
            src, directory=str(tmp_path / "i"), register=False
        )
        reader = open_trace(workload.path)
        one = replay_experiment(reader, selector_spec="ipcp")
        two = replay_experiment(reader, selector_spec="ipcp")
        assert one.rows == two.rows
