"""Tests for the selection base plumbing and IPCP / DOL selectors."""

import pytest

from repro.common.types import DemandAccess, PrefetchCandidate
from repro.prefetchers import make_composite
from repro.prefetchers.stride import StridePrefetcher
from repro.selection.base import SelectionAlgorithm, dedupe_by_line
from repro.selection.dol import DOLSelection
from repro.selection.filters import RecentRequestFilter
from repro.selection.ipcp import IPCPSelection


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def candidate(line, prefetcher):
    return PrefetchCandidate(line=line, prefetcher=prefetcher, pc=0x400)


class TestDedupe:
    def test_keeps_higher_priority(self):
        batch = [candidate(5, "stride"), candidate(5, "stream")]
        kept = dedupe_by_line(batch, ["stream", "stride"])
        assert len(kept) == 1
        assert kept[0].prefetcher == "stream"

    def test_distinct_lines_untouched(self):
        batch = [candidate(5, "a"), candidate(6, "b")]
        assert len(dedupe_by_line(batch, ["a", "b"])) == 2

    def test_unknown_prefetcher_lowest_priority(self):
        batch = [candidate(5, "mystery"), candidate(5, "stream")]
        kept = dedupe_by_line(batch, ["stream"])
        assert kept[0].prefetcher == "stream"

    def test_preserves_order(self):
        batch = [candidate(7, "a"), candidate(5, "a"), candidate(6, "a")]
        kept = dedupe_by_line(batch, ["a"])
        assert [c.line for c in kept] == [7, 5, 6]


class TestRecentRequestFilter:
    def test_drops_repeat(self):
        filt = RecentRequestFilter(entries=16, ways=4)
        first = filt.admit([candidate(5, "a")])
        second = filt.admit([candidate(5, "a")])
        assert first and not second
        assert filt.dropped == 1

    def test_within_batch_dedupe(self):
        filt = RecentRequestFilter()
        kept = filt.admit([candidate(5, "a"), candidate(5, "b")])
        assert len(kept) == 1


class TestSelectionBase:
    def test_requires_prefetchers(self):
        class Dummy(SelectionAlgorithm):
            def allocate(self, access):
                return []

        with pytest.raises(ValueError):
            Dummy([])

    def test_duplicate_names_rejected(self):
        class Dummy(SelectionAlgorithm):
            def allocate(self, access):
                return []

        with pytest.raises(ValueError):
            Dummy([StridePrefetcher(), StridePrefetcher()])

    def test_training_occurrences_exposed(self):
        selector = IPCPSelection(make_composite())
        for d in selector.allocate(access(0)):
            d.prefetcher.train(access(0), d.degree)
        assert sum(selector.training_occurrences.values()) == 3


class TestIPCP:
    def test_allocates_everything(self):
        selector = IPCPSelection(make_composite(), degree=4)
        decisions = selector.allocate(access(0))
        assert len(decisions) == 3
        assert all(d.degree == 4 for d in decisions)

    def test_output_mux_prefers_priority(self):
        selector = IPCPSelection(make_composite())
        batch = [candidate(5, "pmp"), candidate(9, "stream")]
        kept = selector.filter_prefetches(batch, access(0))
        assert all(c.prefetcher == "stream" for c in kept)

    def test_lower_priority_passes_when_alone(self):
        selector = IPCPSelection(make_composite())
        kept = selector.filter_prefetches([candidate(5, "pmp")], access(0))
        assert kept and kept[0].prefetcher == "pmp"

    def test_storage_is_filter_only(self):
        assert IPCPSelection(make_composite()).storage_bits > 0


class TestDOL:
    def test_unclaimed_request_walks_all(self):
        selector = DOLSelection(make_composite())
        decisions = selector.allocate(access(0))
        assert [d.prefetcher.name for d in decisions] == ["stream", "stride", "pmp"]

    def test_claiming_prefetcher_stops_walk(self):
        selector = DOLSelection(make_composite())
        stride = selector.prefetcher("stride")
        # Teach stride a confident pattern for this PC.
        for i in range(6):
            stride.train(access(i * 7), degree=0)
        decisions = selector.allocate(access(100))
        names = [d.prefetcher.name for d in decisions]
        assert names == ["stream", "stride"]  # pmp never sees it

    def test_pass_through_trains_earlier_tables(self):
        # The paper's DOL critique: a request destined for P3 leaves
        # traces in P1 and P2 tables on the way through.
        selector = DOLSelection(make_composite())
        decisions = selector.allocate(access(0))
        for d in decisions:
            d.prefetcher.train(access(0), d.degree)
        assert selector.prefetcher("stream").training_occurrences == 1
        assert selector.prefetcher("stride").training_occurrences == 1
