"""Tests for the three-level hierarchy: demand walk, prefetch path, ledger."""

import pytest

from repro.common.config import SystemConfig
from repro.common.types import PrefetchCandidate
from repro.memory.hierarchy import MemoryHierarchy, SharedMemory


def make_hierarchy(**kwargs):
    return MemoryHierarchy(SystemConfig(), **kwargs)


def candidate(line, to_next_level=False, prefetcher="stride"):
    return PrefetchCandidate(
        line=line, prefetcher=prefetcher, pc=0x400, to_next_level=to_next_level
    )


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self):
        h = make_hierarchy()
        result = h.demand_access(1, cycle=0)
        assert result.hit_level == "dram"
        assert result.latency > 100

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.demand_access(1, cycle=0)
        result = h.demand_access(1, cycle=1000)
        assert result.hit_level == "l1"
        assert result.latency == h.l1.latency

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.demand_access(1, cycle=0)
        # Evict line 1 from the 64-set, 8-way L1 by filling its set.
        for i in range(1, 10):
            h.demand_access(1 + i * 64, cycle=i * 1000)
        result = h.demand_access(1, cycle=100_000)
        assert result.hit_level == "l2"

    def test_latencies_ordered_by_level(self):
        h = make_hierarchy()
        dram = h.demand_access(1, cycle=0).latency
        l1 = h.demand_access(1, cycle=10_000).latency
        assert l1 < dram


class TestPrefetchPath:
    def test_prefetch_then_demand_is_covered(self):
        h = make_hierarchy()
        assert h.issue_prefetch(candidate(5), cycle=0)
        result = h.demand_access(5, cycle=10_000)
        assert result.was_covered_by_prefetch
        assert result.prefetch_timely

    def test_untimely_prefetch(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5), cycle=0)
        result = h.demand_access(5, cycle=3)
        assert result.was_covered_by_prefetch
        assert not result.prefetch_timely
        assert result.latency > h.l1.latency

    def test_duplicate_prefetch_dropped(self):
        h = make_hierarchy()
        assert h.issue_prefetch(candidate(5), cycle=0)
        assert not h.issue_prefetch(candidate(5), cycle=1)
        assert h.ledger.dropped.get("stride") == 1

    def test_next_level_prefetch_fills_l2_only(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5, to_next_level=True), cycle=0)
        assert not h.l1.probe(5)
        assert h.l2.probe(5)

    def test_l1_prefetch_also_fills_l2(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5), cycle=0)
        assert h.l1.probe(5)
        assert h.l2.probe(5)

    def test_prefetch_queue_absorbs_mshr_overflow(self):
        h = make_hierarchy()
        mshrs = h.l1.mshrs
        issued = [h.issue_prefetch(candidate(100 + i), cycle=0) for i in range(mshrs + 5)]
        assert all(issued)  # queued, not dropped
        # After fills complete, a demand access drains the queue.
        h.demand_access(10_000, cycle=100_000)
        assert h.ledger.total_issued() == mshrs + 5

    def test_prefetch_queue_overflow_drops(self):
        h = make_hierarchy()
        total = h.l1.mshrs + h.prefetch_queue_depth + 5
        results = [h.issue_prefetch(candidate(200 + i), cycle=0) for i in range(total)]
        assert results.count(False) == 5

    def test_outstanding_prefetch_accounting(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5), cycle=0)
        assert h.outstanding_prefetches(cycle=0) == 1
        assert h.outstanding_prefetches(cycle=10_000) == 0


class TestLedgerAndCallbacks:
    def test_ledger_issue_and_use(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5), cycle=0)
        h.demand_access(5, cycle=10_000)
        assert h.ledger.issued["stride"] == 1
        assert h.ledger.used_timely["stride"] == 1
        assert h.ledger.accuracy("stride") == 1.0

    def test_used_callback_fires(self):
        events = []
        h = MemoryHierarchy(
            SystemConfig(),
            on_prefetch_used=lambda record, timely: events.append((record.line, timely)),
        )
        h.issue_prefetch(candidate(5), cycle=0)
        h.demand_access(5, cycle=10_000)
        assert events == [(5, True)]

    def test_evicted_callback_fires(self):
        events = []
        h = MemoryHierarchy(
            SystemConfig(),
            on_prefetch_evicted=lambda record: events.append(record.line),
        )
        h.issue_prefetch(candidate(5), cycle=0)
        # Force eviction of line 5 from its L1 set (set index 5, 8 ways).
        for i in range(1, 10):
            h.demand_access(5 + i * 64, cycle=i * 1000)
        assert 5 in events
        assert h.ledger.evicted_unused.get("stride", 0) >= 1

    def test_accuracy_overall(self):
        h = make_hierarchy()
        h.issue_prefetch(candidate(5), cycle=0)
        h.issue_prefetch(candidate(6), cycle=0)
        h.demand_access(5, cycle=10_000)
        assert h.ledger.accuracy() == pytest.approx(0.5)


class TestSharedMemory:
    def test_two_cores_share_llc(self):
        config = SystemConfig(cores=2)
        shared = SharedMemory(config)
        core0 = MemoryHierarchy(config, core_id=0, shared=shared)
        core1 = MemoryHierarchy(config, core_id=1, shared=shared)
        core0.demand_access(1, cycle=0)
        # Core 1 misses privately but hits the shared LLC.
        result = core1.demand_access(1, cycle=10_000)
        assert result.hit_level == "llc"

    def test_private_l1s(self):
        config = SystemConfig(cores=2)
        shared = SharedMemory(config)
        core0 = MemoryHierarchy(config, core_id=0, shared=shared)
        core1 = MemoryHierarchy(config, core_id=1, shared=shared)
        core0.demand_access(1, cycle=0)
        assert core0.l1.probe(1)
        assert not core1.l1.probe(1)
