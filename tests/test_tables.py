"""Unit and property tests for the generic set-associative table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.tables import SetAssociativeTable, TableStats


class TestConstruction:
    def test_geometry(self):
        table = SetAssociativeTable(64, ways=4)
        assert table.num_sets == 16
        assert table.num_entries == 64

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(10, ways=4)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(0)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(16, ways=4, replacement="fifo")

    def test_storage_bits(self):
        table = SetAssociativeTable(64, ways=4, entry_bits=16)
        assert table.storage_bits == 64 * 16


class TestLookupInsert:
    def test_miss_then_hit(self):
        table = SetAssociativeTable(16, ways=4)
        assert table.lookup(1) is None
        table.insert(1, "a")
        assert table.lookup(1) == "a"
        assert table.stats.misses == 1
        assert table.stats.hits == 1

    def test_insert_overwrites(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(1, "a")
        table.insert(1, "b")
        assert table.peek(1) == "b"
        assert len(table) == 1

    def test_peek_does_not_count(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(1, "a")
        table.peek(1)
        table.peek(2)
        assert table.stats.lookups == 0

    def test_contains(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(5, "x")
        assert 5 in table
        assert 6 not in table

    def test_get_or_insert(self):
        table = SetAssociativeTable(16, ways=4)
        value = table.get_or_insert(3, list)
        value.append(1)
        assert table.peek(3) == [1]
        assert table.get_or_insert(3, list) == [1]

    def test_invalidate(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(1, "a")
        assert table.invalidate(1)
        assert not table.invalidate(1)
        assert table.peek(1) is None

    def test_clear_preserves_stats(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(1, "a")
        table.lookup(1)
        table.clear()
        assert len(table) == 0
        assert table.stats.hits == 1

    def test_items_iterates_pairs(self):
        table = SetAssociativeTable(16, ways=4)
        table.insert(1, "a")
        table.insert(2, "b")
        assert dict(table.items()) == {1: "a", 2: "b"}


class TestEviction:
    def test_lru_eviction_within_set(self):
        # Fully associative single set: fill it, touch the first entry,
        # insert one more -> the untouched second entry is the victim.
        table = SetAssociativeTable(2, ways=2)
        table.insert(0, "a")
        table.insert(1, "b")
        table.lookup(0)
        evicted = table.insert(2, "c")
        assert evicted == (1, "b")
        assert table.stats.evictions == 1

    def test_occupancy_never_exceeds_capacity(self):
        table = SetAssociativeTable(8, ways=2)
        for key in range(100):
            table.insert(key, key)
        assert len(table) <= 8

    def test_random_replacement_is_deterministic_per_seed(self):
        def fill(seed):
            table = SetAssociativeTable(4, ways=4, replacement="random", seed=seed)
            for key in range(50):
                table.insert(key, key)
            return sorted(k for k, _ in table.items())

        assert fill(7) == fill(7)

    def test_random_replacement_cyclic_stream_gets_hits(self):
        # The motivating property: under a cyclic reference stream larger
        # than capacity, LRU yields ~zero hits while random keeps some.
        cycle = list(range(64)) * 6
        lru = SetAssociativeTable(32, ways=32, replacement="lru")
        rnd = SetAssociativeTable(32, ways=32, replacement="random")
        for table in (lru, rnd):
            for key in cycle:
                if table.lookup(key) is None:
                    table.insert(key, key)
        assert lru.stats.hits == 0
        assert rnd.stats.hits > 0


class TestStats:
    def test_merge(self):
        a = TableStats(lookups=10, hits=6, misses=4, insertions=2, evictions=1)
        b = TableStats(lookups=5, hits=1, misses=4, insertions=3, evictions=2)
        merged = a.merge(b)
        assert merged.lookups == 15
        assert merged.hits == 7
        assert merged.misses == 8
        assert merged.insertions == 5
        assert merged.evictions == 3

    def test_hit_rate(self):
        stats = TableStats(lookups=10, hits=4)
        assert stats.hit_rate == pytest.approx(0.4)

    def test_hit_rate_empty(self):
        assert TableStats().hit_rate == 0.0


@settings(max_examples=50)
@given(
    keys=st.lists(st.integers(0, 500), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4, 8]),
)
def test_table_invariants(keys, ways):
    table = SetAssociativeTable(32, ways=ways)
    for key in keys:
        table.lookup(key)
        table.insert(key, key * 2)
    # Capacity invariant.
    assert len(table) <= 32
    # Accounting invariant.
    assert table.stats.hits + table.stats.misses == table.stats.lookups
    # Every resident value matches its key.
    for key, value in table.items():
        assert value == key * 2
