"""Backwards-compatibility pins for committed on-disk trace fixtures.

``repro.trace.v1`` files recorded by any past release must stay readable
forever: traces are the repository's archival interchange format, and a
reader change that silently reinterprets old bytes would corrupt every
previously recorded experiment.  The fixtures under ``tests/data/`` were
written once and committed; these tests decode those exact bytes — they
never regenerate the files — so any decode-path change that breaks old
traces fails here first.

The record payload comes from :func:`fixture_records`, a self-contained
LCG (no ``random`` module, whose stream could drift across Python
versions), so the expected records are re-derivable from source alone.

Regenerate the fixtures (only when *adding* one, never to paper over a
failure) with::

    PYTHONPATH=src python tests/test_trace_v1_compat.py
"""

import gzip
import os

import pytest

from repro.common.types import AccessType
from repro.cpu.blocktrace import BlockTraceReader
from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import (
    TRACE_SCHEMA,
    TraceFormatError,
    TraceReader,
    open_trace,
    read_info,
    sniff_trace_version,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
FIXTURE_V1 = os.path.join(DATA_DIR, "fixture_lcg.trace.gz")
FIXTURE_V2 = os.path.join(DATA_DIR, "fixture_lcg.trace.v2")

FIXTURE_COUNT = 257
FIXTURE_META = {
    "benchmark": "fixture-lcg",
    "accesses": FIXTURE_COUNT,
    "seed": 0,
    "note": "committed compat fixture; see tests/data/README.md",
}

_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407
_MASK64 = 2**64 - 1


def fixture_records(n=FIXTURE_COUNT):
    """The fixture payload, re-derived from source (pure LCG, no stdlib RNG)."""
    state = 0x2545F4914F6CDD1D
    records = []
    for _ in range(n):
        state = (state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _MASK64
        pc = (state >> 16) & (2**48 - 1)
        state = (state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _MASK64
        address = state >> 20
        records.append(
            TraceRecord(
                pc=pc,
                address=address,
                access_type=(
                    AccessType.STORE if state % 4 == 0 else AccessType.LOAD
                ),
                nonmem_before=state % 500,
                dependent=state % 10 == 0,
            )
        )
    return records


class TestCommittedV1Fixture:
    def test_fixture_is_committed(self):
        assert os.path.exists(FIXTURE_V1), (
            "tests/data/fixture_lcg.trace.gz is missing — it must be "
            "committed, not generated at test time"
        )

    def test_decodes_to_known_records(self):
        assert list(TraceReader(FIXTURE_V1)) == fixture_records()

    def test_open_trace_dispatches_to_v1_reader(self):
        reader = open_trace(FIXTURE_V1)
        assert isinstance(reader, TraceReader)
        assert sniff_trace_version(FIXTURE_V1) == "v1"
        assert list(reader) == fixture_records()

    def test_info_unchanged(self):
        info = read_info(FIXTURE_V1)
        assert info["schema"] == TRACE_SCHEMA
        assert info["count"] == FIXTURE_COUNT
        assert info["meta"] == FIXTURE_META
        assert info["record_bytes"] == 21

    def test_replay_rows_match_in_memory_generation(self):
        # The archival promise is not just "same records" but "same
        # results": replaying the committed bytes must equal simulating
        # the re-derived in-memory records.
        from repro.experiments.runner import replay_experiment

        from_disk = replay_experiment(
            open_trace(FIXTURE_V1), selector_spec="alecto"
        )
        in_memory = replay_experiment(
            fixture_records(), selector_spec="alecto"
        )
        assert from_disk.rows == in_memory.rows

    def test_truncation_still_detected(self, tmp_path):
        payload = gzip.decompress(open(FIXTURE_V1, "rb").read())
        clipped = tmp_path / "clipped.trace.gz"
        with gzip.open(clipped, "wb") as fh:
            fh.write(payload[:-40])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(TraceReader(str(clipped)))

    def test_doctored_footer_still_detected(self, tmp_path):
        payload = gzip.decompress(open(FIXTURE_V1, "rb").read())
        doctored = payload.replace(
            b'{"count": 257}', b'{"count": 258}'
        )
        assert doctored != payload
        bad = tmp_path / "bad.trace.gz"
        with gzip.open(bad, "wb") as fh:
            fh.write(doctored)
        with pytest.raises(TraceFormatError, match="footer declares"):
            list(TraceReader(str(bad)))


class TestCommittedV2Fixture:
    def test_fixture_is_committed(self):
        assert os.path.exists(FIXTURE_V2)

    def test_decodes_to_known_records(self):
        reader = open_trace(FIXTURE_V2)
        assert isinstance(reader, BlockTraceReader)
        assert sniff_trace_version(FIXTURE_V2) == "v2"
        assert list(reader) == fixture_records()

    def test_info_unchanged(self):
        info = read_info(FIXTURE_V2)
        assert info["count"] == FIXTURE_COUNT
        assert info["meta"] == FIXTURE_META
        assert info["codec"] == "gzip"
        assert info["block_records"] == 64
        assert info["blocks"] == 5  # ceil(257 / 64)

    def test_containers_replay_identically(self):
        # Same identity, different container: rows must be byte-equal.
        from repro.experiments.runner import replay_experiment

        v1_rows = replay_experiment(
            open_trace(FIXTURE_V1), selector_spec="alecto"
        ).rows
        v2_rows = replay_experiment(
            open_trace(FIXTURE_V2), selector_spec="alecto"
        ).rows
        assert v1_rows == v2_rows


def _regenerate():
    from repro.cpu.blocktrace import write_trace_v2
    from repro.cpu.tracefile import write_trace

    os.makedirs(DATA_DIR, exist_ok=True)
    records = fixture_records()
    write_trace(FIXTURE_V1, records, meta=FIXTURE_META)
    write_trace_v2(
        FIXTURE_V2, records, meta=FIXTURE_META, codec="gzip", block_records=64
    )
    print(f"wrote {FIXTURE_V1} and {FIXTURE_V2} ({len(records)} records)")


if __name__ == "__main__":
    _regenerate()
