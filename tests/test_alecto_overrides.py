"""Tests for the Section VI-A CSR-style per-prefetcher overrides."""

import pytest

from repro.common.types import DemandAccess
from repro.prefetchers import make_composite
from repro.selection.alecto import AlectoConfig, AlectoSelection
from repro.selection.alecto.allocation_table import AllocationTable


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


class TestDegreeOverrides:
    def test_override_applies_in_ui(self):
        config = AlectoConfig(degree_overrides=(("pmp", 6),))
        selector = AlectoSelection(make_composite(), config)
        decisions = selector.allocate(access(0))
        degrees = {d.prefetcher.name: d.degree for d in decisions}
        assert degrees["pmp"] == 6
        assert degrees["stride"] == config.conservative_degree

    def test_override_applies_in_ia(self):
        from repro.selection.alecto.states import PrefetcherState

        config = AlectoConfig(degree_overrides=(("pmp", 6),))
        selector = AlectoSelection(make_composite(), config)
        entry = selector.allocation_table.lookup(0x400)
        entry.states[2] = PrefetcherState.ia(5)
        decisions = selector.allocate(access(0))
        degrees = {d.prefetcher.name: d.degree for d in decisions}
        assert degrees["pmp"] == 6  # not c + m + 1

    def test_unknown_override_rejected(self):
        config = AlectoConfig(degree_overrides=(("nonesuch", 6),))
        with pytest.raises(ValueError):
            AlectoSelection(make_composite(), config)


class TestDBOverrides:
    def test_zero_db_prevents_hard_block(self):
        table = AllocationTable(
            num_prefetchers=2,
            temporal_flags=[False, False],
            deficiency_boundaries=[0.05, 0.0],
        )
        table.lookup(0x400)
        table.epoch_update(0x400, [0.01, 0.01])
        states = table.lookup(0x400).states
        assert states[0].is_blocked  # default DB blocks
        assert states[1].is_ui  # overridden DB=0 never blocks

    def test_override_length_checked(self):
        with pytest.raises(ValueError):
            AllocationTable(
                num_prefetchers=3,
                temporal_flags=[False] * 3,
                deficiency_boundaries=[0.05],
            )

    def test_selection_wires_db_override(self):
        config = AlectoConfig(db_overrides=(("pmp", 0.0),))
        selector = AlectoSelection(make_composite(), config)
        assert selector.allocation_table.deficiency_boundaries[2] == 0.0
        assert selector.allocation_table.deficiency_boundaries[0] == 0.05
