"""Tests for the content-addressed result store (:mod:`repro.store`).

Pins the store's contract end to end: key stability across processes,
hit/miss/invalidation on ``code_fingerprint`` bumps (exactly the bumped
selector's cells recompute), corrupted-record detection, concurrent
atomic writers, resumability of interrupted suite runs, and warm runs
executing zero simulations with byte-identical rows.
"""

import glob
import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.experiments.common import cell_rows, cell_store_key, speedup_suite
from repro.experiments.runner import SuiteRunner
from repro.registry import EXPERIMENTS, SELECTORS
from repro.sim import simulation_count
from repro.store import (
    ResultStore,
    StoreKey,
    activate,
    cell_key,
    experiment_key,
    run_suite,
    trace_identity,
)
from repro.workloads import get_profile

ACCESSES = 400
#: Overrides that shrink fig01/fig08 to test scale (also part of the key).
TINY = {"accesses": 120, "seed": 1}


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture
def profiles():
    return {"gcc": get_profile("gcc"), "mcf": get_profile("mcf")}


@contextmanager
def bumped_fingerprint(registry, name, fingerprint=2):
    """Temporarily re-register ``name`` with a bumped code fingerprint."""
    obj = registry.get(name)
    meta = registry.metadata(name)
    registry.add(name, obj, **{**meta, "fingerprint": fingerprint})
    try:
        yield
    finally:
        registry.add(name, obj, **meta)


class TestKeys:
    def test_cell_key_is_stable_within_process(self):
        profile = get_profile("gcc")
        first = cell_key(trace_identity(profile=profile), "alecto", 500, 1)
        second = cell_key(trace_identity(profile=profile), "alecto", 500, 1)
        assert first.digest == second.digest

    def test_cell_key_depends_on_every_input(self):
        profile = get_profile("gcc")
        base = cell_key(trace_identity(profile=profile), "alecto", 500, 1)
        variants = [
            cell_key(trace_identity(profile=get_profile("mcf")), "alecto", 500, 1),
            cell_key(trace_identity(profile=profile), "ipcp", 500, 1),
            cell_key(trace_identity(profile=profile), "alecto:fixed_degree=6", 500, 1),
            cell_key(trace_identity(profile=profile), "alecto", 501, 1),
            cell_key(trace_identity(profile=profile), "alecto", 500, 2),
            cell_key(
                trace_identity(profile=profile), "alecto", 500, 1,
                context={"composite": "gs_berti_cplx"},
            ),
        ]
        digests = {base.digest} | {k.digest for k in variants}
        assert len(digests) == len(variants) + 1

    def test_default_config_and_explicit_default_alias(self):
        from repro.common.config import SystemConfig

        profile = get_profile("gcc")
        implicit = cell_key(trace_identity(profile=profile), "alecto", 500, 1)
        explicit = cell_key(
            trace_identity(profile=profile), "alecto", 500, 1,
            config=SystemConfig(),
        )
        assert implicit.digest == explicit.digest

    def test_explicit_default_context_aliases_implicit(self):
        """Spelling out make_selector defaults must not split the cell.

        fig08 omits ``composite`` while other call sites pass
        ``composite="gs_cs_pmp"`` explicitly — both must address the
        same record, or the same simulation is computed and stored
        twice."""
        profile = get_profile("gcc")
        implicit = cell_store_key(profile, "alecto", 500, 1, None, {})
        explicit = cell_store_key(
            profile, "alecto", 500, 1, None,
            {
                "composite": "gs_cs_pmp",
                "with_temporal": False,
                "temporal_bytes": 1024 * 1024,
                "alecto_config": None,
            },
        )
        assert implicit.digest == explicit.digest
        non_default = cell_store_key(
            profile, "alecto", 500, 1, None, {"composite": "gs_berti_cplx"}
        )
        assert non_default.digest != implicit.digest

    def test_trace_meta_identity(self):
        meta = {"benchmark": "gcc", "accesses": 500, "seed": 1}
        key = cell_key(trace_identity(meta=meta), "alecto", 500, 1)
        assert key.payload["trace"]["source"] == "trace.v1"
        with pytest.raises(ValueError):
            trace_identity()
        with pytest.raises(ValueError):
            trace_identity(profile=get_profile("gcc"), meta=meta)

    def test_key_stable_across_processes(self):
        """A spawned interpreter recomputes the identical digests.

        Guards against salted ``hash()``, dict/set iteration order, or
        unstable ``repr`` sneaking into key derivation: pool workers and
        CI runs must address the very same records.  Selector-bearing
        keys also embed registry fingerprint maps — equal between a
        parent and its pool workers (same registrations), but not
        between this test session (other tests register extra
        components) and a fresh interpreter — so the cross-process pin
        uses a baseline cell (full trace/config/context derivation, no
        fingerprint maps) plus a fixed payload.
        """
        profile = get_profile("gcc")
        local_baseline = cell_store_key(profile, None, 500, 1, None, {})
        fixed = StoreKey(
            "cell",
            {"schema": "repro.store.v1", "n": 1, "pi": 3.125, "s": "x"},
        )
        script = (
            "from repro.experiments.common import cell_store_key\n"
            "from repro.store import StoreKey\n"
            "from repro.workloads import get_profile\n"
            "profile = get_profile('gcc')\n"
            "print(cell_store_key(profile, None, 500, 1, None, {}).digest)\n"
            "print(StoreKey('cell', {'schema': 'repro.store.v1', 'n': 1, "
            "'pi': 3.125, 's': 'x'}).digest)\n"
        )
        env = {**os.environ, "PYTHONHASHSEED": "random"}
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.split()
        assert out == [local_baseline.digest, fixed.digest]

    def test_fingerprint_bump_changes_only_that_selector(self):
        profile = get_profile("gcc")
        alecto = cell_store_key(profile, "alecto", 500, 1, None, {})
        alecto_spec = cell_store_key(
            profile, "alecto:fixed_degree=6", 500, 1, None, {}
        )
        ipcp = cell_store_key(profile, "ipcp", 500, 1, None, {})
        baseline = cell_store_key(profile, None, 500, 1, None, {})
        with bumped_fingerprint(SELECTORS, "alecto"):
            assert cell_store_key(
                profile, "alecto", 500, 1, None, {}
            ).digest != alecto.digest
            assert cell_store_key(
                profile, "alecto:fixed_degree=6", 500, 1, None, {}
            ).digest != alecto_spec.digest
            assert cell_store_key(
                profile, "ipcp", 500, 1, None, {}
            ).digest == ipcp.digest
            assert cell_store_key(
                profile, None, 500, 1, None, {}
            ).digest == baseline.digest

    def test_experiment_key_ignores_jobs(self):
        serial = experiment_key("fig08", {"accesses": 500, "jobs": 1})
        parallel = experiment_key("fig08", {"accesses": 500, "jobs": 4})
        assert serial.digest == parallel.digest

    def test_experiment_key_tracks_component_fingerprints(self):
        base = experiment_key("fig08", {"accesses": 500})
        with bumped_fingerprint(SELECTORS, "alecto"):
            assert experiment_key("fig08", {"accesses": 500}).digest != base.digest
        assert experiment_key("fig08", {"accesses": 500}).digest == base.digest

    def test_experiment_key_tracks_workload_definitions(self, monkeypatch):
        """Editing a benchmark profile must invalidate experiment records.

        Cells track their own profile via ``trace_identity``; the
        experiment tier embeds ``workload_fingerprint()`` so a changed
        pattern mix cannot leave a whole-experiment record looking
        fresh."""
        import dataclasses

        from repro.workloads import ALL_SUITES

        base = experiment_key("fig08", {"accesses": 500})
        suite = dict(ALL_SUITES["spec06"])
        name, profile = next(iter(suite.items()))
        suite[name] = dataclasses.replace(profile, mem_ratio=profile.mem_ratio / 2)
        monkeypatch.setitem(ALL_SUITES, "spec06", suite)
        assert experiment_key("fig08", {"accesses": 500}).digest != base.digest

    def test_new_workload_registration_invalidates_only_its_own_cells(self):
        """Registering a workload must not move other workloads' cell keys.

        Cells are keyed on their own profile's content
        (``trace_identity``), so a new registration leaves every
        existing cell record hittable — only experiment-tier records
        (which embed ``workload_fingerprint()``) go stale and then
        replay their untouched cells from the store."""
        from repro.registry import WORKLOADS
        from repro.store.keys import workload_fingerprint
        from repro.workloads.profiles import profile as make_profile

        gcc_cell = cell_store_key(get_profile("gcc"), "alecto", 500, 1, None, {})
        baseline = cell_store_key(get_profile("gcc"), None, 500, 1, None, {})
        experiment = experiment_key("fig08", {"accesses": 500})
        fingerprint_before = workload_fingerprint()

        fresh = make_profile("zz_fresh", "test", True, 0.3, [
            (1.0, "drifting_stride", {"footprint": 1 << 22}),
        ])
        WORKLOADS.add("zz_fresh", fresh, suite="test")
        try:
            # Existing cells: byte-identical keys, still cache hits.
            assert cell_store_key(
                get_profile("gcc"), "alecto", 500, 1, None, {}
            ).digest == gcc_cell.digest
            assert cell_store_key(
                get_profile("gcc"), None, 500, 1, None, {}
            ).digest == baseline.digest
            # The new workload's cells are their own, distinct keys.
            assert cell_store_key(
                fresh, "alecto", 500, 1, None, {}
            ).digest != gcc_cell.digest
            # The conservative experiment tier does go stale.
            assert workload_fingerprint() != fingerprint_before
            assert experiment_key(
                "fig08", {"accesses": 500}
            ).digest != experiment.digest
        finally:
            WORKLOADS._entries.pop("zz_fresh", None)
            WORKLOADS._metadata.pop("zz_fresh", None)
        assert workload_fingerprint() == fingerprint_before

    def test_imported_traces_do_not_move_experiment_keys(self, tmp_path):
        """Ambient `repro trace import` runs must not invalidate caches:
        imported traces only reach an experiment through an explicit
        parameter, which is already part of its key."""
        from repro.cpu.champsim import IMPORTED_PROFILES, import_trace, write_champsim
        from repro.registry import WORKLOADS
        from repro.store.keys import workload_fingerprint

        base = experiment_key("fig08", {"accesses": 500})
        fingerprint_before = workload_fingerprint()
        src = str(tmp_path / "zz.champsim.gz")
        write_champsim(src, get_profile("gcc").generate(50, seed=1))
        import_trace(src, name="zz_ambient", directory=str(tmp_path / "i"))
        try:
            assert workload_fingerprint() == fingerprint_before
            assert experiment_key("fig08", {"accesses": 500}).digest == base.digest
        finally:
            IMPORTED_PROFILES.pop("zz_ambient", None)
            for key in ("zz_ambient", "imported/zz_ambient"):
                WORKLOADS._entries.pop(key, None)
                WORKLOADS._metadata.pop(key, None)


class TestResultStore:
    def test_put_get_roundtrip(self, store):
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 1})
        value = {"ipc": 1.2345678901234567, "table_misses": 42}
        store.put(key, value, meta={"benchmark": "gcc"})
        record = store.get(key)
        assert record["value"] == value  # floats round-trip exactly
        assert record["meta"]["benchmark"] == "gcc"
        assert store.stats.hits == 1 and store.stats.puts == 1

    def test_get_miss(self, store):
        assert store.get(StoreKey("cell", {"absent": True})) is None
        assert store.stats.misses == 1

    def test_value_insertion_order_survives(self, store):
        key = StoreKey("experiment", {"n": 1})
        value = {"zebra": 1, "alpha": 2, "mid": {"b": 1, "a": 2}}
        store.put(key, value)
        assert json.dumps(store.get_value(key)) == json.dumps(value)

    def test_corrupt_record_is_miss_and_verify_flags_it(self, store, capsys):
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 2})
        store.put(key, {"ipc": 1.0})
        path = store.path_for(key)
        content = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(content.replace(b'"ipc": 1.0', b'"ipc": 9.9'))
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert "corrupt record" in capsys.readouterr().err
        problems = store.verify()
        assert len(problems) == 1 and "footer" in problems[0][1]

    def test_truncated_record_detected(self, store):
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 3})
        store.put(key, {"ipc": 1.0})
        path = store.path_for(key)
        body = open(path, "rb").read().partition(b"\n")[0]
        with open(path, "wb") as handle:
            handle.write(body)  # strip the integrity footer
        assert store.get(key) is None
        assert any("footer" in reason for _, reason in store.verify())

    def test_misfiled_record_flagged(self, store):
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 4})
        store.put(key, {"ipc": 1.0})
        path = store.path_for(key)
        bogus = os.path.join(os.path.dirname(path), "ab" * 16 + ".json")
        os.rename(path, bogus)
        assert any("filename" in reason for _, reason in store.verify())

    def test_gc_drops_stale_and_corrupt(self, store):
        profile = get_profile("gcc")
        alecto = cell_store_key(profile, "alecto", 500, 1, None, {})
        ipcp = cell_store_key(profile, "ipcp", 500, 1, None, {})
        store.put(alecto, {"ipc": 1.0})
        store.put(ipcp, {"ipc": 1.0})
        with bumped_fingerprint(SELECTORS, "alecto"):
            removed = store.gc()
        assert removed == [store.path_for(alecto)]
        assert store.get(ipcp) is not None

    def test_gc_drops_cells_of_edited_profiles(self, store):
        """A workload edit orphans its old cells; gc must reclaim them."""
        import dataclasses

        profile = get_profile("gcc")
        edited = dataclasses.replace(profile, mem_ratio=profile.mem_ratio / 2)
        orphan = cell_store_key(edited, "alecto", 500, 1, None, {})
        live = cell_store_key(profile, "alecto", 500, 1, None, {})
        store.put(orphan, {"ipc": 1.0})
        store.put(live, {"ipc": 1.0})
        removed = store.gc()
        assert removed == [store.path_for(orphan)]
        assert store.get(live) is not None

    def test_gc_drops_cells_stranded_by_new_prefetcher(self, store):
        """Registering a prefetcher changes every selector-cell key, so
        the old records are unreachable; gc must reclaim them (full-set
        comparison, not per-entry)."""
        from repro.registry import PREFETCHERS

        profile = get_profile("gcc")
        cell = cell_store_key(profile, "alecto", 500, 1, None, {})
        baseline = cell_store_key(profile, None, 500, 1, None, {})
        store.put(cell, {"ipc": 1.0})
        store.put(baseline, {"ipc": 1.0})
        PREFETCHERS.add("_gc_test_prefetcher", object)
        try:
            assert cell_store_key(
                profile, "alecto", 500, 1, None, {}
            ).digest != cell.digest
            removed = store.gc()
            assert removed == [store.path_for(cell)]
            assert store.get(baseline) is not None  # baselines unaffected
        finally:
            del PREFETCHERS._entries["_gc_test_prefetcher"]
            del PREFETCHERS._metadata["_gc_test_prefetcher"]

    def test_gc_everything_and_dry_run(self, store):
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 5})
        store.put(key, {"ipc": 1.0})
        assert store.gc(everything=True, dry_run=True) == [store.path_for(key)]
        assert store.get(key) is not None
        store.gc(everything=True)
        assert store.get(key) is None

    def test_gc_reclaims_orphaned_tmp_files(self, store):
        """A worker killed mid-``put`` leaks its ``*.tmp`` sibling.

        No process remembers the random temp name afterwards, so gc is
        the only reclaimer — but it must not race a *live* writer, so
        only temps older than the grace period (or ``everything``) go.
        """
        key = StoreKey("cell", {"schema": "repro.store.v1", "x": 5})
        store.put(key, {"ipc": 1.0})
        shard_dir = os.path.dirname(store.path_for(key))
        stale_tmp = os.path.join(shard_dir, "tmpdead01.tmp")
        fresh_tmp = os.path.join(shard_dir, "tmplive01.tmp")
        journal_dir = os.path.join(store.root, "journal")
        os.makedirs(journal_dir)
        journal_tmp = os.path.join(journal_dir, ".run-xyz.tmp")
        for path in (stale_tmp, fresh_tmp, journal_tmp):
            with open(path, "w") as handle:
                handle.write("partial")
        old = time.time() - 7200
        os.utime(stale_tmp, (old, old))
        os.utime(journal_tmp, (old, old))

        # stale=False isolates the temp sweep (the synthetic record has
        # no live fingerprints, so default stale gc would drop it too)
        removed = store.gc(stale=False, dry_run=True)
        assert stale_tmp in removed and journal_tmp in removed
        assert fresh_tmp not in removed
        assert os.path.exists(stale_tmp)  # dry run deleted nothing

        removed = store.gc(stale=False)
        assert stale_tmp in removed and journal_tmp in removed
        assert not os.path.exists(stale_tmp)
        assert not os.path.exists(journal_tmp)
        assert os.path.exists(fresh_tmp)  # within grace: maybe mid-write
        assert store.get_value(key) == {"ipc": 1.0}  # records untouched

        # everything reclaims temps regardless of age
        assert fresh_tmp in store.gc(everything=True)
        assert not os.path.exists(fresh_tmp)

    def test_export_import_roundtrip(self, store, tmp_path):
        keys = [StoreKey("cell", {"schema": "repro.store.v1", "x": i}) for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, {"ipc": float(i)})
        archive = str(tmp_path / "archive.jsonl.gz")
        assert store.export(archive) == 5
        other = ResultStore(str(tmp_path / "other"))
        assert other.import_archive(archive) == 5
        assert other.import_archive(archive) == 0  # idempotent merge
        for i, key in enumerate(keys):
            assert other.get_value(key) == {"ipc": float(i)}
        assert other.verify() == []

    def test_import_rejects_doctored_archive(self, store, tmp_path):
        import gzip

        store.put(StoreKey("cell", {"schema": "repro.store.v1", "x": 6}), {"ipc": 1.0})
        archive = str(tmp_path / "archive.jsonl.gz")
        store.export(archive)
        lines = gzip.open(archive, "rt").read().splitlines()
        lines[1] = lines[1].replace('"ipc": 1.0', '"ipc": 9.9')
        with gzip.open(archive, "wt") as handle:
            handle.write("\n".join(lines) + "\n")
        other = ResultStore(str(tmp_path / "other"))
        with pytest.raises(ValueError, match="integrity cross-check"):
            other.import_archive(archive)

    def test_concurrent_writers_same_key(self, store, tmp_path):
        """Two processes putting the same key leave one valid record."""
        script = (
            "import sys\n"
            "from repro.store import ResultStore, StoreKey\n"
            "store = ResultStore(sys.argv[1])\n"
            "key = StoreKey('cell', {'schema': 'repro.store.v1', 'race': 1})\n"
            "for _ in range(100):\n"
            "    store.put(key, {'ipc': 1.25})\n"
        )
        env = {**os.environ}
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, store.root],
                env=env, stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for worker in workers:
            assert worker.wait() == 0, worker.stderr.read()
        key = StoreKey("cell", {"schema": "repro.store.v1", "race": 1})
        assert store.get_value(key) == {"ipc": 1.25}
        assert store.verify() == []
        leftovers = [
            name
            for name in os.listdir(os.path.dirname(store.path_for(key)))
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCellCaching:
    def test_warm_speedup_suite_executes_zero_simulations(
        self, store, profiles
    ):
        with activate(store):
            before = simulation_count()
            cold = speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
            cold_sims = simulation_count() - before
            warm = speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
            warm_sims = simulation_count() - before - cold_sims
        assert cold_sims == 6  # (baseline + 2 selectors) x 2 benchmarks
        assert warm_sims == 0
        assert json.dumps(cold) == json.dumps(warm)

    def test_bump_invalidates_exactly_that_selectors_cells(
        self, store, profiles
    ):
        with activate(store):
            speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
            with bumped_fingerprint(SELECTORS, "alecto"):
                before = simulation_count()
                bumped = speedup_suite(
                    profiles, ["ipcp", "alecto"], accesses=ACCESSES
                )
                # one alecto cell per benchmark; baselines and ipcp hit
                assert simulation_count() - before == len(profiles)
            before = simulation_count()
            restored = speedup_suite(
                profiles, ["ipcp", "alecto"], accesses=ACCESSES
            )
            assert simulation_count() - before == 0
        assert json.dumps(bumped) == json.dumps(restored)

    def test_parallel_fanout_populates_store_for_serial_warm_run(
        self, store, profiles
    ):
        cold = SuiteRunner(jobs=2, store=store).speedup_suite(
            profiles, ["ipcp", "alecto"], accesses=ACCESSES
        )
        with activate(store):
            before = simulation_count()
            warm = speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
            assert simulation_count() - before == 0
        assert json.dumps(cold) == json.dumps(warm)

    def test_parallel_fanout_reads_store(self, store, profiles):
        with activate(store):
            speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
        puts = store.stats.puts
        rows = SuiteRunner(jobs=2, store=store).speedup_suite(
            profiles, ["ipcp", "alecto"], accesses=ACCESSES
        )
        assert store.stats.puts == puts  # every cell was a hit
        with activate(store):
            assert json.dumps(rows) == json.dumps(
                speedup_suite(profiles, ["ipcp", "alecto"], accesses=ACCESSES)
            )

    def test_cell_rows_shares_cells_with_speedup_suite(self, store, profiles):
        with activate(store):
            speedup_suite(profiles, ["ipcp"], accesses=ACCESSES)
            before = simulation_count()
            rows = cell_rows(profiles["gcc"], "ipcp", ACCESSES, 1)
            assert simulation_count() - before == 0
            assert rows["table_misses"] >= 0

    def test_no_store_means_no_caching(self, profiles, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        before = simulation_count()
        speedup_suite(profiles, ["ipcp"], accesses=ACCESSES)
        speedup_suite(profiles, ["ipcp"], accesses=ACCESSES)
        assert simulation_count() - before == 8


class TestRunSuite:
    def test_warm_suite_is_cached_and_byte_identical(self, store):
        cold = run_suite(["fig01"], overrides=TINY, store=store)
        assert cold.computed == ["fig01"] and cold.cached == []
        before = simulation_count()
        warm = run_suite(["fig01"], overrides=TINY, store=store)
        assert simulation_count() - before == 0
        assert warm.cached == ["fig01"] and warm.computed == []
        assert json.dumps(cold.results[0].to_dict()) == json.dumps(
            warm.results[0].to_dict()
        )

    def test_interrupted_suite_resumes(self, store):
        """A crash mid-suite loses only the in-flight experiment."""
        broken = EXPERIMENTS.get("fig08")
        meta = EXPERIMENTS.metadata("fig08")

        def explode(**kwargs):
            raise RuntimeError("injected failure")

        import dataclasses

        EXPERIMENTS.add("fig08", dataclasses.replace(broken, fn=explode), **meta)
        try:
            with pytest.raises(RuntimeError, match="injected"):
                run_suite(["fig01", "fig08"], overrides=TINY, store=store)
        finally:
            EXPERIMENTS.add("fig08", broken, **meta)
        # fig01 completed before the crash and was persisted immediately.
        report = run_suite(["fig01"], overrides=TINY, store=store)
        assert report.cached == ["fig01"]

    def test_experiment_invalidation_reuses_cells(self, store):
        """Bumping a selector re-runs experiments but replays their cells.

        fig01 sums table misses over ipcp and alecto cells; after an
        ``ipcp`` bump the experiment record is stale, yet re-running it
        simulates only the ipcp cells — the alecto half comes from the
        store.
        """
        cold = run_suite(["fig01"], overrides=TINY, store=store)
        cells = sum(1 for _ in glob.iglob(store.root + "/[0-9a-f][0-9a-f]/*.json"))
        with bumped_fingerprint(SELECTORS, "ipcp"):
            before = simulation_count()
            bumped = run_suite(["fig01"], overrides=TINY, store=store)
            sims = simulation_count() - before
        assert bumped.computed == ["fig01"]
        # half the cells (the ipcp ones) re-simulated, none of alecto's
        assert sims == (cells - 1) // 2
        assert json.dumps(bumped.results[0].rows) == json.dumps(
            cold.results[0].rows
        )

    def test_parallel_suite_workers_write_cells(self, store):
        """Pool workers inherit the store and persist their own cells.

        Two experiments so the pool path engages (a single miss runs
        serially in-process)."""
        parent_before = simulation_count()
        report = run_suite(
            ["fig01", "fig08"], overrides=TINY, jobs=2, store=store
        )
        assert sorted(report.computed) == ["fig01", "fig08"]
        # all simulating happened in the workers — and their activity
        # reaches the parent's totals, so the suite summary must not
        # read "0 simulations" just because a pool did the work
        assert simulation_count() == parent_before
        assert report.worker_simulations > 0
        assert store.stats.puts > 2
        with activate(store):
            before = simulation_count()
            cell_rows(get_profile("gcc"), "ipcp", TINY["accesses"], TINY["seed"])
            assert simulation_count() - before == 0
        warm = run_suite(["fig01", "fig08"], overrides=TINY, jobs=1, store=store)
        assert warm.cached == ["fig01", "fig08"]
        assert warm.worker_simulations == 0
        assert json.dumps(warm.results[0].rows) == json.dumps(
            report.results[0].rows
        )

    def test_invalid_cached_result_is_recomputed_not_crash(
        self, store, capsys
    ):
        """An integrity-valid record with a bad result payload is a miss."""
        cold = run_suite(["fig01"], overrides=TINY, store=store)
        from repro.store import experiment_key
        from repro.experiments.runner import resolve_experiments

        (_, _, params) = resolve_experiments(["fig01"], overrides=TINY)[0]
        key = experiment_key("fig01", params)
        record = store.get(key)
        broken = dict(record["value"])
        broken["schema"] = "repro.experiment-result.v999"
        store.put(key, broken, meta=record["meta"])
        hits_before = store.stats.hits
        cells = sum(1 for _ in glob.iglob(store.root + "/[0-9a-f][0-9a-f]/*.json")) - 1
        report = run_suite(["fig01"], overrides=TINY, store=store)
        assert report.computed == ["fig01"]
        assert "recomputing" in capsys.readouterr().err
        # the get() that surfaced the bad record is reclassified as a
        # corrupt miss; the only hits added are the replayed cells
        assert store.stats.hits == hits_before + cells
        assert store.stats.corrupt == 1
        assert json.dumps(report.results[0].rows) == json.dumps(
            cold.results[0].rows
        )
        # the recompute overwrote the bad record: warm again
        assert run_suite(["fig01"], overrides=TINY, store=store).cached == [
            "fig01"
        ]

    def test_store_none_recomputes(self):
        report = run_suite(["fig01"], overrides=TINY, store=None)
        assert report.computed == ["fig01"] and report.store is None
