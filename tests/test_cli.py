"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "mcf"])
        assert args.benchmark == "mcf"
        assert args.selector == "alecto"
        assert args.accesses == 15000

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_experiment_modules_importable(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run")
            assert hasattr(module, "main")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "spec06" in out

    def test_run_small(self, capsys):
        assert main(["run", "libquantum", "--accesses", "1500"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_baseline_only(self, capsys):
        assert main(["run", "povray", "--selector", "none", "--accesses", "800"]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        assert main([
            "compare", "libquantum", "--accesses", "1200",
            "--selectors", "ipcp", "alecto",
        ]) == 0
        out = capsys.readouterr().out
        assert "ipcp" in out and "alecto" in out
