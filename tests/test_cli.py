"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.registry import list_experiments, list_selectors


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "mcf"])
        assert args.benchmark == "mcf"
        assert args.selector == "alecto"
        assert args.accesses == 15000
        assert args.with_temporal is False
        assert args.config == "default"

    def test_experiment_names_validated(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_requires_names_or_all(self, capsys):
        assert main(["experiment"]) == 2

    def test_experiment_rejects_names_with_all(self, capsys):
        assert main(["experiment", "fig08", "--all"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_all_experiment_modules_importable(self):
        import importlib

        from repro.experiments import EXPERIMENT_MODULES

        for module_name in EXPERIMENT_MODULES:
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")


class TestRegistryDrivenLists:
    def test_cli_offers_every_registered_experiment(self):
        # The old hardcoded CLI list drifted from the registered modules;
        # the registry-driven CLI cannot.
        from repro.experiments import EXPERIMENT_MODULES

        assert len(list_experiments()) == len(EXPERIMENT_MODULES)

    def test_previously_missing_selectors_are_listed(self):
        selectors = list_selectors()
        assert "triangel" in selectors
        assert "pmp_only" in selectors
        assert "berti_only" in selectors


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "spec06" in out
        assert "triangel" in out
        assert "pmp_only" in out

    def test_list_verbose(self, capsys):
        assert main(["list", "-v"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out

    def test_run_small(self, capsys):
        assert main(["run", "libquantum", "--accesses", "1500"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_baseline_only(self, capsys):
        assert main(["run", "povray", "--selector", "none", "--accesses", "800"]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_unknown_selector_exits_cleanly(self, capsys):
        assert main(["run", "mcf", "--selector", "oracle"]) == 2
        err = capsys.readouterr().err
        assert "unknown selector" in err and "Traceback" not in err

    def test_bad_spec_parameter_exits_cleanly(self, capsys):
        assert main(["run", "mcf", "--selector", "alecto:bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_triangel_without_temporal_exits_cleanly(self, capsys):
        assert main(["compare", "mcf", "--selectors", "triangel"]) == 2
        assert "with_temporal" in capsys.readouterr().err

    def test_run_selector_spec(self, capsys):
        assert main([
            "run", "libquantum", "--selector", "alecto:fixed_degree=6",
            "--accesses", "800",
        ]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_run_with_temporal_and_config(self, capsys):
        assert main([
            "run", "mcf", "--selector", "triangel", "--with-temporal",
            "--config", "temporal", "--accesses", "800",
        ]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        assert main([
            "compare", "libquantum", "--accesses", "1200",
            "--selectors", "ipcp", "alecto",
        ]) == 0
        out = capsys.readouterr().out
        assert "ipcp" in out and "alecto" in out

    def test_experiment_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main([
            "experiment", "table3", "--json", str(path),
        ]) == 0
        assert "Table III" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.cli-output.v1"
        assert document["command"] == "experiment"
        assert document["data"]["schema"] == "repro.experiment-suite.v1"
        assert document["data"]["results"][0]["name"] == "table3"

    def test_experiment_accesses_override(self, capsys):
        assert main(["experiment", "abl_epoch", "--accesses", "500"]) == 0
        assert "epoch=" in capsys.readouterr().out
