"""Tests for the CPLX-style complex-stride prefetcher."""

from repro.common.types import DemandAccess
from repro.prefetchers.cplx import CplxPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def drive(pf, deltas, laps, degree=0, pc=0x400):
    """Feed a repeating delta sequence; returns the final train() output."""
    line = 0
    produced = []
    for _ in range(laps):
        for delta in deltas:
            produced = pf.train(access(line, pc), degree=degree)
            line += delta
    return produced, line


class TestDeltaSequences:
    def test_motivating_sequence_predicted(self):
        # The Section II-A example: (+1, +1, +1, +4) defeats constant
        # stride but is exactly predictable from delta history.
        pf = CplxPrefetcher()
        produced, line = drive(pf, (1, 1, 1, 4), laps=12, degree=1)
        assert produced, "CPLX should predict the repeating sequence"

    def test_chain_lookahead(self):
        pf = CplxPrefetcher()
        produced, line = drive(pf, (2, 3), laps=20, degree=4)
        assert len(produced) >= 2
        deltas = [produced[0].line - (line - 3)] + [
            b.line - a.line for a, b in zip(produced, produced[1:])
        ]
        assert set(deltas) <= {2, 3}

    def test_constant_stride_also_handled(self):
        pf = CplxPrefetcher()
        produced, line = drive(pf, (5,), laps=12, degree=2)
        assert [c.line for c in produced] == [line - 5 + 5, line - 5 + 10]

    def test_random_deltas_not_predicted(self):
        import random

        rng = random.Random(3)
        pf = CplxPrefetcher()
        line = 0
        produced = []
        for _ in range(60):
            produced = pf.train(access(line), degree=2)
            line += rng.randrange(1, 1000)
        assert produced == []


class TestWouldHandle:
    def test_trained_sequence_claimed(self):
        pf = CplxPrefetcher()
        drive(pf, (1, 1, 1, 4), laps=12)
        assert pf.would_handle(access(99999))
        # A PC with no history is not claimed.
        assert not pf.would_handle(access(0, pc=0x900))


class TestAccounting:
    def test_two_tables(self):
        assert len(CplxPrefetcher().tables()) == 2

    def test_training_counted(self):
        pf = CplxPrefetcher()
        drive(pf, (1, 2), laps=5)
        assert pf.training_occurrences == 10
