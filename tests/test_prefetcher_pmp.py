"""Tests for the PMP-style spatial bit-pattern prefetcher."""

from repro.common.types import REGION_LINES, DemandAccess
from repro.prefetchers.pmp import PMPPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def visit_regions(pf, offsets, regions, pc=0x400, degree=0):
    """Visit each region touching ``offsets``; returns trigger outputs."""
    trigger_outputs = []
    for region in regions:
        base = region * REGION_LINES
        for index, offset in enumerate(offsets):
            produced = pf.train(access(base + offset, pc), degree=degree)
            if index == 0:
                trigger_outputs.append(produced)
    return trigger_outputs


class TestPatternLearning:
    def test_learned_pattern_replayed_on_trigger(self):
        pf = PMPPrefetcher(at_entries=2)  # small AT -> fast retirement
        offsets = (0, 3, 7, 11)
        outputs = visit_regions(pf, offsets, regions=range(100, 120), degree=8)
        final = outputs[-1]
        assert final, "pattern should be learned and replayed"
        base = 119 * REGION_LINES
        predicted = {c.line - base for c in final}
        assert predicted <= {3, 7, 11}
        assert len(predicted) >= 2

    def test_pattern_relative_to_trigger_offset(self):
        pf = PMPPrefetcher(at_entries=2)
        offsets = (5, 8, 12)
        outputs = visit_regions(pf, offsets, regions=range(200, 220), degree=8)
        base = 219 * REGION_LINES
        predicted = {c.line - base for c in outputs[-1]}
        assert predicted <= {8, 12}

    def test_single_line_regions_learn_nothing(self):
        pf = PMPPrefetcher(at_entries=2)
        outputs = visit_regions(pf, (0,), regions=range(300, 330), degree=8)
        assert all(not out for out in outputs)

    def test_degree_caps_replay(self):
        pf = PMPPrefetcher(at_entries=2)
        offsets = tuple(range(0, 32, 2))
        outputs = visit_regions(pf, offsets, regions=range(400, 430), degree=3)
        assert len(outputs[-1]) <= 3

    def test_nearest_offsets_first(self):
        pf = PMPPrefetcher(at_entries=2)
        offsets = (0, 2, 30)
        outputs = visit_regions(pf, offsets, regions=range(500, 530), degree=1)
        base = 529 * REGION_LINES
        assert outputs[-1][0].line - base == 2


class TestWouldHandle:
    def test_known_pattern_claimed(self):
        pf = PMPPrefetcher(at_entries=2)
        visit_regions(pf, (0, 3, 7), regions=range(600, 630))
        assert pf.would_handle(access(999 * REGION_LINES))

    def test_unknown_pc_not_claimed(self):
        pf = PMPPrefetcher()
        assert not pf.would_handle(access(0, pc=0x900))


class TestAccounting:
    def test_tables(self):
        assert len(PMPPrefetcher().tables()) == 2

    def test_non_trigger_accesses_accumulate_only(self):
        pf = PMPPrefetcher()
        pf.train(access(0), degree=8)
        produced = pf.train(access(1), degree=8)
        assert produced == []
