"""Tests for the multi-core workload mixes."""

from repro.workloads.mixes import (
    heterogeneous_mix,
    homogeneous_mix,
    multicore_workloads,
)
from repro.workloads.spec06 import SPEC06_PROFILES


class TestHomogeneous:
    def test_shape(self):
        traces = homogeneous_mix(SPEC06_PROFILES["milc"], cores=4, accesses_per_core=100)
        assert len(traces) == 4
        assert all(len(t) == 100 for t in traces)

    def test_per_core_seeds_differ(self):
        traces = homogeneous_mix(SPEC06_PROFILES["milc"], cores=2, accesses_per_core=200)
        assert traces[0] != traces[1]

    def test_deterministic(self):
        a = homogeneous_mix(SPEC06_PROFILES["milc"], 2, 100, seed=5)
        b = homogeneous_mix(SPEC06_PROFILES["milc"], 2, 100, seed=5)
        assert a == b


class TestHeterogeneous:
    def test_shape(self):
        profiles = list(SPEC06_PROFILES.values())[:5]
        traces = heterogeneous_mix(profiles, cores=8, accesses_per_core=50)
        assert len(traces) == 8

    def test_deterministic_choice(self):
        profiles = list(SPEC06_PROFILES.values())[:5]
        a = heterogeneous_mix(profiles, 4, 50, seed=2)
        b = heterogeneous_mix(profiles, 4, 50, seed=2)
        assert a == b


class TestFig17Groups:
    def test_group_names(self):
        groups = multicore_workloads(cores=2, accesses_per_core=50)
        assert set(groups) == {"spec06", "spec17", "parsec", "ligra"}

    def test_group_shapes(self):
        groups = multicore_workloads(cores=2, accesses_per_core=50)
        for traces in groups.values():
            assert len(traces) == 2
            assert all(len(t) == 50 for t in traces)
