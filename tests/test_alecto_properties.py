"""Property-based tests on Alecto's state machine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection.alecto.allocation_table import AllocationTable
from repro.selection.alecto.states import StateKind

PC = 0x400

accuracy_strategy = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
)


def make_table(temporal_last=False):
    return AllocationTable(
        num_prefetchers=3,
        temporal_flags=[False, False, temporal_last],
    )


@settings(max_examples=60)
@given(epochs=st.lists(st.tuples(accuracy_strategy, accuracy_strategy, accuracy_strategy), max_size=25))
def test_states_always_valid(epochs):
    """After any epoch history, every state is structurally valid."""
    table = make_table()
    table.lookup(PC)
    for accuracies in epochs:
        table.epoch_update(PC, list(accuracies))
    entry = table.peek(PC)
    for state in entry.states:
        if state.kind is StateKind.IA:
            assert 0 <= state.level <= table.max_aggressive_level
        elif state.kind is StateKind.IB:
            assert -table.block_epochs <= state.level <= 0
        else:
            assert state.level == 0


@settings(max_examples=60)
@given(epochs=st.lists(st.tuples(accuracy_strategy, accuracy_strategy, accuracy_strategy), min_size=1, max_size=25))
def test_perfect_prefetcher_never_blocked(epochs):
    """A prefetcher with accuracy 1.0 every epoch must never be blocked."""
    table = make_table()
    table.lookup(PC)
    for accuracies in epochs:
        forced = [1.0, accuracies[1], accuracies[2]]
        table.epoch_update(PC, forced)
        assert not table.peek(PC).states[0].is_blocked


@settings(max_examples=60)
@given(
    epochs=st.lists(
        st.tuples(accuracy_strategy, accuracy_strategy, accuracy_strategy),
        min_size=1,
        max_size=25,
    )
)
def test_hopeless_prefetcher_never_aggressive(epochs):
    """A prefetcher with accuracy 0.0 every epoch must never reach IA."""
    table = make_table()
    table.lookup(PC)
    for accuracies in epochs:
        forced = [0.0, accuracies[1], accuracies[2]]
        table.epoch_update(PC, forced)
        assert not table.peek(PC).states[0].is_aggressive


@settings(max_examples=40)
@given(
    data=st.lists(
        st.tuples(accuracy_strategy, accuracy_strategy, accuracy_strategy),
        max_size=20,
    )
)
def test_temporal_never_promoted_alongside_nontemporal(data):
    """Whenever the temporal prefetcher is in IA, no epoch promoted it
    together with a qualifying non-temporal prefetcher (Section IV-F)."""
    table = make_table(temporal_last=True)
    table.lookup(PC)
    for accuracies in data:
        before = [s.kind for s in table.peek(PC).states]
        table.epoch_update(PC, list(accuracies))
        after = table.peek(PC).states
        temporal_promoted = (
            before[2] is StateKind.UI and after[2].kind is StateKind.IA
        )
        if temporal_promoted:
            # The same event-1 must not have promoted a non-temporal
            # prefetcher out of UI.
            for i in (0, 1):
                promoted = before[i] is StateKind.UI and after[i].kind is StateKind.IA
                assert not promoted


@settings(max_examples=40)
@given(seed=st.integers(0, 2**31))
def test_blocked_state_is_temporary(seed):
    """An IB_-N prefetcher left alone always cools back to UI
    eventually — blocking is 'for a limited duration' (Section IV-A)."""
    import random

    rng = random.Random(seed)
    table = make_table()
    table.lookup(PC)
    table.epoch_update(PC, [0.0, None, None])  # hard block index 0
    assert table.peek(PC).states[0].is_blocked
    for _ in range(table.block_epochs + 2):
        table.epoch_update(PC, [None, None, None])
    assert table.peek(PC).states[0].is_ui
