"""Tests for the Best-Offset prefetcher extension."""

from repro.common.types import DemandAccess
from repro.prefetchers.bop import _CANDIDATE_OFFSETS, BOPPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


class TestOffsetLearning:
    def test_learns_constant_offset(self):
        pf = BOPPrefetcher()
        produced = []
        for i in range(600):
            produced = pf.train(access(i * 4), degree=1)
        assert pf.best_offset == 4
        assert produced and produced[0].line == 599 * 4 + 4

    def test_learns_unit_offset_for_streams(self):
        pf = BOPPrefetcher()
        for i in range(600):
            pf.train(access(i), degree=0)
        assert pf.best_offset in (1, 2, 3)  # small offsets all score

    def test_turns_off_on_random(self):
        import random

        rng = random.Random(5)
        pf = BOPPrefetcher()
        produced = []
        # Enough rounds for scoring to conclude nothing works.
        for _ in range(_CANDIDATE_OFFSETS[-1] * 400):
            produced = pf.train(access(rng.randrange(1 << 24)), degree=1)
            if not pf._active:
                break
        assert not pf._active
        assert produced == [] or pf.train(access(0), degree=1) == []

    def test_degree_multiplies_offset(self):
        pf = BOPPrefetcher()
        produced = []
        for i in range(600):
            produced = pf.train(access(i * 4), degree=3)
        last = 599 * 4
        assert [c.line for c in produced] == [last + 4, last + 8, last + 12]


class TestInterface:
    def test_would_handle_tracks_active_flag(self):
        pf = BOPPrefetcher()
        assert pf.would_handle(access(0))
        pf._active = False
        assert not pf.would_handle(access(0))

    def test_confidence_bounds(self):
        pf = BOPPrefetcher()
        for i in range(100):
            pf.train(access(i), degree=0)
        assert 0.0 <= pf.prediction_confidence() <= 1.0

    def test_single_table(self):
        assert len(BOPPrefetcher().tables()) == 1
