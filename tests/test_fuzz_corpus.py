"""The committed fuzz corpus: every entry is a permanent regression test.

``tests/data/fuzz_corpus.json`` holds the minimized adversarial finds
(`repro.fuzz-corpus.v1`); this module replays each one and asserts the
recorded outcome reproduces, pins the corpus invariants (schema,
canonical minimized specs, fully-specified workload specs), and pins the
invalidation scope of registering corpus finds as workloads:
experiment-tier only — simulation cell keys stay byte-stable.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    corpus_entries,
    load_corpus,
    merge_finds,
    register_corpus_workloads,
    replay_entry,
    save_corpus,
    verify_entry,
)
from repro.fuzz.search import FIND_SCHEMA, Find
from repro.registry import canonical_spec, parse_spec

CORPUS_PATH = Path(__file__).parent / "data" / "fuzz_corpus.json"

ENTRIES = corpus_entries(CORPUS_PATH)


class TestCorpusDocument:
    def test_committed_corpus_exists_with_at_least_three_finds(self):
        document = load_corpus(CORPUS_PATH)
        assert document["schema"] == CORPUS_SCHEMA
        assert len(document["finds"]) >= 3

    def test_entries_cover_multiple_objectives_and_factories(self):
        objectives = {entry["objective"].split(":")[0] for entry in ENTRIES}
        factories = {entry["factory"] for entry in ENTRIES}
        assert len(objectives) >= 2
        assert len(factories) >= 2

    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=[entry["name"] for entry in ENTRIES]
    )
    def test_entry_shape(self, entry):
        assert entry["schema"] == FIND_SCHEMA
        # The workload spec is fully specified: every searchable param
        # spelled out, so a factory-default change cannot move the point.
        from repro.fuzz.space import factory_param_space

        _, params = parse_spec(entry["workload"])
        assert set(params) == set(factory_param_space(entry["factory"]))
        # The minimized spec is the canonical reduction of the workload.
        assert entry["minimized"] == canonical_spec(
            "workload", entry["workload"]
        )
        assert entry["selectors"], "a find names the selectors it judged"
        assert entry["score"] > 0.0

    def test_sorted_and_unique_names(self):
        names = [entry["name"] for entry in ENTRIES]
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestCorpusReplay:
    """The regression guarantee: every committed find still reproduces."""

    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=[entry["name"] for entry in ENTRIES]
    )
    def test_entry_replays_with_recorded_metrics(self, entry):
        report = verify_entry(entry)
        assert report["fired"], (
            f"{entry['name']}: objective {entry['objective']} no longer "
            f"fires at {entry['workload']}"
        )
        assert report["ok"], (
            f"{entry['name']}: replay diverged from recorded metrics: "
            f"{json.dumps(report['mismatches'], sort_keys=True)}"
        )

    def test_replay_outcome_is_deterministic(self):
        entry = min(ENTRIES, key=lambda e: len(e["selectors"]))
        first = replay_entry(entry)
        second = replay_entry(entry)
        assert first.metrics == second.metrics
        assert first.score == second.score


class TestCorpusFile:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(path, ENTRIES)
        assert corpus_entries(path) == sorted(
            ENTRIES, key=lambda entry: entry["name"]
        )

    def test_merge_replaces_same_name_and_sorts(self):
        find = Find(
            name=ENTRIES[0]["name"],
            factory=ENTRIES[0]["factory"],
            workload=ENTRIES[0]["workload"],
            minimized=ENTRIES[0]["minimized"],
            objective=ENTRIES[0]["objective"],
            selectors=tuple(ENTRIES[0]["selectors"]),
            seed=ENTRIES[0]["seed"],
            accesses=ENTRIES[0]["accesses"],
            search_seed=99,
            score=1.0,
            metrics={"marker": True},
        )
        merged = merge_finds(ENTRIES, [find])
        assert len(merged) == len(ENTRIES)
        replaced = next(e for e in merged if e["name"] == find.name)
        assert replaced["metrics"] == {"marker": True}
        assert [e["name"] for e in merged] == sorted(e["name"] for e in merged)

    def test_missing_corpus_is_empty(self, tmp_path):
        assert corpus_entries(tmp_path / "nope.json") == []

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "wrong", "finds": []}))
        with pytest.raises(ValueError, match="schema"):
            load_corpus(path)


@pytest.fixture
def registry_snapshot():
    """Snapshot/restore the workload registries around a registration."""
    from repro.registry import SUITES, WORKLOADS

    WORKLOADS._ensure_loaded()
    SUITES._ensure_loaded()
    saved = [
        (reg, dict(reg._entries), dict(reg._metadata))
        for reg in (WORKLOADS, SUITES)
    ]
    try:
        yield
    finally:
        for reg, entries, metadata in saved:
            reg._entries = entries
            reg._metadata = metadata


class TestRegistrationScope:
    """Registering corpus finds invalidates experiment records only."""

    def test_registration_and_fingerprint_scope(self, registry_snapshot):
        from repro.experiments.common import cell_store_key
        from repro.registry import build_workload, get_suite
        from repro.store.keys import workload_fingerprint

        probe = build_workload("phased")
        key_before = cell_store_key(probe, "alecto", 500, 1, None, {})
        fingerprint_before = workload_fingerprint()

        names = register_corpus_workloads(ENTRIES)
        assert names == sorted(entry["name"] for entry in ENTRIES)

        # The finds are now ordinary named workloads and a suite.
        for name in names:
            assert build_workload(name) is not None
        assert set(get_suite("fuzz")) == set(names)

        # Experiment-tier invalidation: the conservative workload
        # fingerprint moves with the new registrations...
        assert workload_fingerprint() != fingerprint_before
        # ...but simulation cell keys never fold it: existing cells
        # stay byte-stable, so a warm store loses nothing.
        key_after = cell_store_key(probe, "alecto", 500, 1, None, {})
        assert key_after == key_before
