"""Contract tests on the public API surface.

A downstream user should be able to rely on the names re-exported from
the package roots; these tests pin that surface.
"""

import inspect

import repro
import repro.common
import repro.memory
import repro.prefetchers
import repro.selection
import repro.sim
import repro.workloads


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_simulate_signature(self):
        parameters = inspect.signature(repro.simulate).parameters
        assert list(parameters) == ["trace", "selector", "config", "name"]


class TestApiFacade:
    """Pin the stable ``repro.api`` facade surface."""

    def test_surface(self):
        import repro.api

        assert repro.api.__all__ == [
            "build_selector",
            "build_workload",
            "open_store",
            "run_experiment",
            "run_suite",
            "submit",
        ]
        for name in repro.api.__all__:
            assert callable(getattr(repro.api, name)), name

    def test_reexported_from_root(self):
        import repro.api

        assert "api" in repro.__all__
        assert repro.api is getattr(repro, "api")

    def test_open_store_resolution(self, tmp_path, monkeypatch):
        import repro.api

        explicit = repro.api.open_store(str(tmp_path / "a"))
        assert explicit.root == str(tmp_path / "a")
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "b"))
        from_env = repro.api.open_store()
        assert from_env.root == str(tmp_path / "b")

    def test_run_experiment_accepts_store_url(self, tmp_path):
        import repro.api

        url = str(tmp_path / "store")
        result = repro.api.run_experiment(
            "fig01", fast=True, overrides={"accesses": 120, "seed": 1},
            store=url,
        )
        assert result.name == "fig01"
        again = repro.api.run_suite(
            ["fig01"], fast=True, overrides={"accesses": 120, "seed": 1},
            store=url,
        )
        assert again.cached == ["fig01"] and not again.computed

    def test_builders_are_registry_functions(self):
        import repro.api
        import repro.registry

        assert repro.api.build_selector is repro.registry.build_selector
        assert repro.api.build_workload is repro.registry.build_workload


class TestSubpackageExports:
    def test_common(self):
        for name in repro.common.__all__:
            assert getattr(repro.common, name, None) is not None, name

    def test_memory(self):
        for name in repro.memory.__all__:
            assert getattr(repro.memory, name, None) is not None, name

    def test_prefetchers(self):
        for name in repro.prefetchers.__all__:
            assert getattr(repro.prefetchers, name, None) is not None, name

    def test_selection(self):
        for name in repro.selection.__all__:
            assert getattr(repro.selection, name, None) is not None, name

    def test_sim(self):
        for name in repro.sim.__all__:
            assert getattr(repro.sim, name, None) is not None, name

    def test_workloads(self):
        for name in repro.workloads.__all__:
            assert getattr(repro.workloads, name, None) is not None, name


class TestDocstrings:
    def test_public_modules_documented(self):
        import pkgutil

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = __import__(module_info.name, fromlist=["_"])
            assert module.__doc__, f"{module_info.name} lacks a module docstring"

    def test_prefetchers_documented(self):
        from repro.prefetchers.base import Prefetcher

        for cls in Prefetcher.__subclasses__():
            assert cls.__doc__, cls

    def test_selectors_documented(self):
        from repro.selection.base import SelectionAlgorithm

        for cls in SelectionAlgorithm.__subclasses__():
            assert cls.__doc__, cls
