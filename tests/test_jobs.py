"""The async job API: jobspec canonicalization, server, and idempotency."""

import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.experiments.runner import RetryPolicy
from repro.jobs import (
    JOBSPEC_SCHEMA,
    JobClient,
    JobServerError,
    JobSpecError,
    canonical_json,
    canonicalize_jobspec,
    job_digest,
    serve,
)

#: Tiny deterministic scale shared by every live-execution test.
TINY = {"accesses": 120, "seed": 1}

#: Retries must not dominate test wall-clock.
FAST_POLICY = RetryPolicy(backoff_base=0.01, backoff_max=0.02)


@contextmanager
def _server(store_root, **kwargs):
    kwargs.setdefault("policy", FAST_POLICY)
    server = serve(str(store_root), port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, JobClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestJobSpec:
    def test_canonical_form(self):
        spec = canonicalize_jobspec(
            {"experiments": ["fig01"], "fast": True, "overrides": TINY}
        )
        assert spec == {
            "schema": JOBSPEC_SCHEMA,
            "experiments": ["fig01"],
            "fast": True,
            "overrides": {"accesses": 120, "seed": 1},
        }

    def test_defaults_omitted(self):
        spec = canonicalize_jobspec(
            {"experiments": ["fig01"], "fast": False, "overrides": {},
             "jobs": 1}
        )
        assert spec == {"schema": JOBSPEC_SCHEMA, "experiments": ["fig01"]}

    def test_all_equals_explicit_list(self):
        from repro.registry import list_experiments

        all_spec = canonicalize_jobspec({"experiments": "all"})
        explicit = canonicalize_jobspec({"experiments": list_experiments()})
        assert canonical_json(all_spec) == canonical_json(explicit)
        assert job_digest(all_spec) == job_digest(explicit)

    def test_experiment_list_sorted_and_deduped(self):
        a = canonicalize_jobspec({"experiments": ["fig08", "fig01", "fig08"]})
        b = canonicalize_jobspec({"experiments": ["fig01", "fig08"]})
        assert a == b

    def test_execution_hints_excluded_from_digest(self):
        base = canonicalize_jobspec({"experiments": ["fig01"]})
        hinted = canonicalize_jobspec(
            {"experiments": ["fig01"], "jobs": 4, "store": "/tmp/elsewhere"}
        )
        assert hinted["jobs"] == 4 and hinted["store"] == "/tmp/elsewhere"
        assert job_digest(hinted) == job_digest(base)

    def test_cell_mode_selector_defaults_canonicalize(self):
        spelled = canonicalize_jobspec(
            {"workload": "mcf", "selector": "ipcp:degree=3"}
        )
        bare = canonicalize_jobspec({"workload": "mcf", "selector": "ipcp"})
        assert spelled == bare
        assert job_digest(spelled) == job_digest(bare)

    def test_cell_mode_non_default_kept(self):
        spec = canonicalize_jobspec(
            {"workload": "mcf", "selector": "ipcp:degree=4"}
        )
        assert spec["selector"] == "ipcp:degree=4"

    def test_rejects_unknown_field(self):
        with pytest.raises(JobSpecError, match="unknown jobspec field"):
            canonicalize_jobspec({"experiments": ["fig01"], "bogus": 1})

    def test_rejects_unknown_experiment(self):
        with pytest.raises(JobSpecError, match="unknown experiment"):
            canonicalize_jobspec({"experiments": ["nonsense"]})

    def test_rejects_mixed_modes(self):
        with pytest.raises(JobSpecError, match="not both"):
            canonicalize_jobspec(
                {"experiments": ["fig01"], "workload": "mcf",
                 "selector": "ipcp"}
            )

    def test_rejects_empty(self):
        with pytest.raises(JobSpecError):
            canonicalize_jobspec({})
        with pytest.raises(JobSpecError):
            canonicalize_jobspec({"experiments": []})

    def test_rejects_bad_schema(self):
        with pytest.raises(JobSpecError, match="unsupported jobspec schema"):
            canonicalize_jobspec(
                {"schema": "repro.jobspec.v9", "experiments": ["fig01"]}
            )

    def test_rejects_bad_config_preset(self):
        with pytest.raises(JobSpecError, match="unknown config preset"):
            canonicalize_jobspec(
                {"workload": "mcf", "selector": "ipcp", "config": "bogus"}
            )

    def test_canonical_json_is_stable(self):
        a = canonicalize_jobspec(
            {"overrides": {"seed": 1, "accesses": 120},
             "experiments": ["fig01"], "fast": True}
        )
        b = canonicalize_jobspec(
            {"experiments": ["fig01"], "fast": True,
             "overrides": {"accesses": 120, "seed": 1}}
        )
        assert canonical_json(a) == canonical_json(b)


class TestServerLifecycle:
    def test_healthz_and_submit_to_done(self, tmp_path):
        with _server(tmp_path / "store") as (server, client):
            health = client.healthz()
            assert health["ok"] is True and health["queued"] == 0
            document = client.submit(
                {"experiments": ["fig01"], "fast": True, "overrides": TINY}
            )
            assert document["schema"] == "repro.job.v1"
            assert document["state"] in ("queued", "running", "done")
            done = client.wait(document["id"], timeout=240)
            assert done["state"] == "done"
            assert done["simulations"] > 0
            assert done["progress"]["completed"] == 1
            assert done["progress"]["computed"] == 1
            results = list(client.results(document["id"]))
            assert len(results) == 1
            assert results[0]["name"] == "fig01"
            assert results[0]["schema"] == "repro.experiment-result.v1"
            listing = client.list_jobs()
            assert [job["id"] for job in listing] == [document["id"]]

    def test_resubmission_replays_warm_with_zero_simulations(self, tmp_path):
        spec = {"experiments": ["fig01"], "fast": True, "overrides": TINY}
        with _server(tmp_path / "store") as (server, client):
            first = client.wait(client.submit(spec)["id"], timeout=240)
            assert first["state"] == "done" and first["simulations"] > 0
            second = client.wait(client.submit(spec)["id"], timeout=60)
            assert second["id"] != first["id"]
            assert second["state"] == "done"
            assert second["simulations"] == 0
            assert second["progress"]["cached"] == 1
            assert second["progress"]["computed"] == 0
            a = list(client.results(first["id"]))
            b = list(client.results(second["id"]))
            assert json.dumps(a[0]["rows"], sort_keys=True) == json.dumps(
                b[0]["rows"], sort_keys=True
            )

    def test_default_spelled_out_spec_is_same_job_identity(self, tmp_path):
        """jobs/store hints and defaulted fields do not defeat idempotency."""
        with _server(tmp_path / "store") as (server, client):
            base = client.wait(
                client.submit({"experiments": ["fig01"], "fast": True,
                               "overrides": TINY})["id"],
                timeout=240,
            )
            spelled = client.submit(
                {"schema": JOBSPEC_SCHEMA, "experiments": ["fig01"],
                 "fast": True, "overrides": TINY, "jobs": 1}
            )
            assert spelled["digest"] == base["digest"]
            done = client.wait(spelled["id"], timeout=60)
            assert done["simulations"] == 0

    def test_unknown_job_is_404(self, tmp_path):
        with _server(tmp_path / "store") as (server, client):
            with pytest.raises(JobServerError) as excinfo:
                client.status("nope-1")
            assert excinfo.value.status == 404

    def test_bad_spec_is_400(self, tmp_path):
        with _server(tmp_path / "store") as (server, client):
            with pytest.raises(JobServerError) as excinfo:
                client.submit({"experiments": ["nonsense"]})
            assert excinfo.value.status == 400

    def test_cell_mode_job(self, tmp_path):
        spec = {"workload": "mcf", "selector": "ipcp",
                "overrides": {"accesses": 300, "seed": 1}}
        with _server(tmp_path / "store") as (server, client):
            done = client.wait(client.submit(spec)["id"], timeout=120)
            assert done["state"] == "done"
            rows = list(client.results(done["id"]))
            assert rows[0]["workload"] == "mcf"
            assert rows[0]["selector"] == "ipcp"
            assert rows[0]["rows"]  # per-cell summary landed
            warm = client.wait(
                client.submit(dict(spec, selector="ipcp:degree=3"))["id"],
                timeout=60,
            )
            assert warm["simulations"] == 0
            assert warm["progress"]["cached"] == 1


class TestConcurrencyAndBackpressure:
    def test_concurrent_submissions_deduplicate_to_one_computation(
        self, tmp_path
    ):
        spec = {"experiments": ["fig01"], "fast": True, "overrides": TINY}
        with _server(tmp_path / "store", start_workers=False) as (
            server, client,
        ):
            ids, errors = [], []

            def submit():
                try:
                    ids.append(client.submit(spec)["id"])
                except Exception as exc:  # noqa: BLE001 — collected
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            # All eight submissions landed on ONE queued job.
            assert len(set(ids)) == 1
            assert client.healthz()["queued"] == 1
            server.manager.start()
            done = client.wait(ids[0], timeout=240)
            assert done["state"] == "done"
            assert done["progress"]["computed"] == 1
            # One computation total: the store saw exactly one cold run.
            assert len(client.list_jobs()) == 1

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        with _server(
            tmp_path / "store", start_workers=False, queue_limit=1
        ) as (server, client):
            client.submit({"experiments": ["fig01"], "fast": True,
                           "overrides": TINY})
            with pytest.raises(JobServerError) as excinfo:
                client.submit({"experiments": ["fig08"], "fast": True,
                               "overrides": TINY})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None

    def test_cancel_queued_job(self, tmp_path):
        with _server(tmp_path / "store", start_workers=False) as (
            server, client,
        ):
            document = client.submit(
                {"experiments": ["fig01"], "fast": True, "overrides": TINY}
            )
            cancelled = client.cancel(document["id"])
            assert cancelled["state"] == "cancelled"
            assert client.status(document["id"])["state"] == "cancelled"
            assert client.healthz()["queued"] == 0
            # A cancelled job is terminal: resubmission is a NEW job.
            fresh = client.submit(
                {"experiments": ["fig01"], "fast": True, "overrides": TINY}
            )
            assert fresh["id"] != document["id"]

    def test_results_stream_ends_on_terminal_state(self, tmp_path):
        with _server(tmp_path / "store", start_workers=False) as (
            server, client,
        ):
            document = client.submit(
                {"experiments": ["fig01"], "fast": True, "overrides": TINY}
            )
            client.cancel(document["id"])
            assert list(client.results(document["id"])) == []


class TestByteIdentityWithDirectSuite:
    def test_served_rows_match_repro_suite(self, tmp_path):
        """A served job and a direct run_suite into the same store agree
        byte-for-byte (the PR's acceptance criterion)."""
        from repro.store import ResultStore, run_suite

        store_root = str(tmp_path / "store")
        direct_root = str(tmp_path / "direct")
        with _server(store_root) as (server, client):
            served = client.wait(
                client.submit({"experiments": ["fig01"], "fast": True,
                               "overrides": TINY})["id"],
                timeout=240,
            )
            assert served["state"] == "done"
            served_rows = list(client.results(served["id"]))[0]["rows"]
        report = run_suite(
            ["fig01"], fast=True, overrides=TINY,
            store=ResultStore(direct_root),
        )
        direct_rows = report.results[0].to_dict()["rows"]
        assert json.dumps(served_rows, sort_keys=True) == json.dumps(
            direct_rows, sort_keys=True
        )

    def test_direct_suite_after_served_job_is_warm(self, tmp_path):
        """The served job's records are ordinary store records: a direct
        `repro suite` against the same store replays them."""
        from repro.store import ResultStore, run_suite

        store_root = str(tmp_path / "store")
        with _server(store_root) as (server, client):
            client.wait(
                client.submit({"experiments": ["fig01"], "fast": True,
                               "overrides": TINY})["id"],
                timeout=240,
            )
        report = run_suite(
            ["fig01"], fast=True, overrides=TINY,
            store=ResultStore(store_root),
        )
        assert report.cached == ["fig01"] and not report.computed


class TestFaultInjection:
    def test_job_dispatch_io_retries_and_converges(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "job_dispatch_io:p=1:seed=3:attempts=1"
        )
        with _server(tmp_path / "store") as (server, client):
            done = client.wait(
                client.submit({"experiments": ["fig01"], "fast": True,
                               "overrides": TINY})["id"],
                timeout=240,
            )
            assert done["state"] == "done"
            # attempt 0 always faulted, attempt 1 always succeeded.
            assert done["attempts"] == 2

    def test_job_dispatch_io_exhaustion_fails_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "job_dispatch_io:p=1:seed=3")
        with _server(tmp_path / "store") as (server, client):
            done = client.wait(
                client.submit({"experiments": ["fig01"], "fast": True,
                               "overrides": TINY})["id"],
                timeout=60,
            )
            assert done["state"] == "failed"
            assert done["attempts"] == FAST_POLICY.max_attempts
            assert "job_dispatch_io" in (done["error"] or "")

    def test_failed_job_resubmission_recovers(self, tmp_path, monkeypatch):
        """Crash-then-resubmit: the second job resumes from the store
        (here: recomputes cleanly once the faults clear)."""
        monkeypatch.setenv("REPRO_FAULTS", "job_dispatch_io:p=1:seed=3")
        spec = {"experiments": ["fig01"], "fast": True, "overrides": TINY}
        with _server(tmp_path / "store") as (server, client):
            failed = client.wait(client.submit(spec)["id"], timeout=60)
            assert failed["state"] == "failed"
            monkeypatch.delenv("REPRO_FAULTS")
            done = client.wait(client.submit(spec)["id"], timeout=240)
            assert done["state"] == "done"


class TestProgressCallback:
    def test_run_suite_progress_events(self, tmp_path):
        from repro.store import ResultStore, run_suite

        events = []
        store = ResultStore(str(tmp_path / "store"))
        run_suite(["fig01"], fast=True, overrides=TINY, store=store,
                  progress=events.append)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "resolved"
        assert events[0]["requested"] == 1
        computed = [e for e in events if e["event"] == "result"]
        assert computed and computed[0]["source"] == "computed"
        assert computed[0]["name"] == "fig01"

        events.clear()
        run_suite(["fig01"], fast=True, overrides=TINY, store=store,
                  progress=events.append)
        cached = [e for e in events if e["event"] == "result"]
        assert cached and cached[0]["source"] == "cached"

    def test_progress_exceptions_are_swallowed(self, tmp_path):
        from repro.store import ResultStore, run_suite

        def broken(event):
            raise RuntimeError("progress must not break the run")

        store = ResultStore(str(tmp_path / "store"))
        report = run_suite(["fig01"], fast=True, overrides=TINY,
                           store=store, progress=broken)
        assert report.status == "clean"
        assert len(report.results) == 1
