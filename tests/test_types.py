"""Tests for the core value types."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import (
    CACHE_LINE_BYTES,
    REGION_LINES,
    AccessType,
    DemandAccess,
    PrefetchCandidate,
    line_address,
    region_address,
)


class TestAddressHelpers:
    def test_line_address(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 1
        assert line_address(130) == 2

    def test_region_address(self):
        assert region_address(0) == 0
        assert region_address(4095) == 0
        assert region_address(4096) == 1

    def test_region_line_relationship(self):
        assert REGION_LINES * CACHE_LINE_BYTES == 4096


class TestDemandAccess:
    def test_line_property(self):
        access = DemandAccess(pc=0x400, address=129)
        assert access.line == 2

    def test_region_property(self):
        access = DemandAccess(pc=0x400, address=8192)
        assert access.region == 2

    def test_frozen(self):
        access = DemandAccess(pc=1, address=2)
        try:
            access.pc = 3
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_defaults(self):
        access = DemandAccess(pc=1, address=2)
        assert access.access_type is AccessType.LOAD
        assert access.core_id == 0


class TestPrefetchCandidate:
    def test_defaults(self):
        candidate = PrefetchCandidate(line=10, prefetcher="stride", pc=0x400)
        assert not candidate.to_next_level
        assert candidate.confidence == 1.0

    def test_mutable_annotation(self):
        candidate = PrefetchCandidate(line=10, prefetcher="stride", pc=0x400)
        candidate.to_next_level = True
        assert candidate.to_next_level


class TestSlottedPickling:
    def test_demand_access_roundtrip(self):
        import pickle

        access = DemandAccess(pc=0x400, address=8192, core_id=2, timestamp=7)
        clone = pickle.loads(pickle.dumps(access))
        assert clone == access
        assert clone.line == access.line and clone.region == access.region

    def test_trace_record_roundtrip(self):
        import pickle

        from repro.cpu.trace import TraceRecord

        rec = TraceRecord(pc=1, address=256, nonmem_before=5, dependent=True)
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec

    def test_no_instance_dict(self):
        access = DemandAccess(pc=1, address=2)
        assert not hasattr(access, "__dict__")


@given(address=st.integers(0, 2**50))
def test_line_and_region_consistent(address):
    line = line_address(address)
    region = region_address(address)
    assert line * CACHE_LINE_BYTES <= address < (line + 1) * CACHE_LINE_BYTES
    assert region == line // REGION_LINES
