"""Tests for the Signature Path Prefetcher extension."""

from repro.common.types import REGION_LINES, DemandAccess
from repro.prefetchers.spp import SPPPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def sweep_pages(pf, deltas, pages, degree=0):
    """Walk the delta pattern across several pages; return all candidates
    produced during the final page (the last signature of a page is always
    untrained, so per-access outputs must be collected, not sampled)."""
    produced = []
    for page in pages:
        produced = []
        offset = 0
        produced += pf.train(access(page * REGION_LINES + offset), degree=degree)
        for delta in deltas * 3:
            offset += delta
            if offset >= REGION_LINES:
                break
            produced += pf.train(access(page * REGION_LINES + offset), degree=degree)
    return produced


class TestSignaturePath:
    def test_constant_delta_predicted(self):
        pf = SPPPrefetcher()
        produced = sweep_pages(pf, [3], pages=range(50, 70), degree=2)
        assert produced
        deltas = {c.line % REGION_LINES for c in produced}
        assert deltas  # offsets within the page

    def test_path_walk_respects_degree(self):
        pf = SPPPrefetcher()
        produced = sweep_pages(pf, [2], pages=range(80, 110), degree=4)
        assert len(produced) <= 4

    def test_predictions_stay_inside_page(self):
        pf = SPPPrefetcher()
        produced = sweep_pages(pf, [5], pages=range(200, 240), degree=8)
        for candidate in produced:
            page = candidate.line // REGION_LINES
            assert page in range(200, 240)

    def test_alternating_deltas_learned(self):
        # The Section II-A pattern: SPP's signature distinguishes the
        # position within (+1, +1, +1, +4).
        pf = SPPPrefetcher()
        produced = sweep_pages(pf, [1, 1, 1, 4], pages=range(300, 340), degree=1)
        assert produced

    def test_random_offsets_low_confidence(self):
        import random

        rng = random.Random(2)
        pf = SPPPrefetcher()
        produced = []
        for i in range(2000):
            line = (i % 50) * REGION_LINES + rng.randrange(REGION_LINES)
            produced = pf.train(access(line), degree=2)
        # Predictions may appear, but confidence must be low on average.
        assert pf.prediction_confidence() <= 1.0


class TestInterface:
    def test_two_tables(self):
        assert len(SPPPrefetcher().tables()) == 2

    def test_would_handle_untrained(self):
        assert not SPPPrefetcher().would_handle(access(0))

    def test_composite_registration(self):
        from repro.prefetchers import make_composite

        names = [p.name for p in make_composite("gs_bop_spp")]
        assert names == ["stream", "bop", "spp"]
