"""Tests for the ROB/MLP core timing model."""

import pytest

from repro.common.config import SystemConfig
from repro.cpu.core import CoreModel


def make_core(**overrides):
    return CoreModel(SystemConfig(**overrides))


class TestNonMemory:
    def test_issue_width_throughput(self):
        core = make_core()
        core.advance(600)
        assert core.stats.cycles == pytest.approx(100.0)
        assert core.stats.instructions == 600

    def test_ipc_without_misses(self):
        core = make_core()
        core.advance(6000)
        assert core.stats.ipc == pytest.approx(6.0)


class TestMemoryAccesses:
    def test_hit_is_pipeline_hidden(self):
        core = make_core()
        core.memory_access(latency=4)
        core.drain()
        assert core.stats.cycles == pytest.approx(1 / 6)

    def test_single_miss_costs_latency_on_drain(self):
        core = make_core()
        core.memory_access(latency=200)
        core.drain()
        assert core.stats.cycles >= 200

    def test_independent_misses_overlap(self):
        core = make_core()
        for _ in range(8):
            core.memory_access(latency=200)
        core.drain()
        # Eight overlapping misses complete in ~one latency, not eight.
        assert core.stats.cycles < 2 * 200

    def test_dependent_misses_serialize(self):
        core = make_core()
        for _ in range(8):
            core.memory_access(latency=200, dependent=True)
        core.drain()
        assert core.stats.cycles >= 7 * 200

    def test_store_does_not_block(self):
        core = make_core()
        core.memory_access(latency=200, is_load=False)
        core.drain()
        assert core.stats.cycles < 10
        assert core.stats.stores == 1

    def test_load_store_counters(self):
        core = make_core()
        core.memory_access(latency=4, is_load=True)
        core.memory_access(latency=4, is_load=False)
        assert core.stats.loads == 1
        assert core.stats.stores == 1


class TestStructuralLimits:
    def test_rob_fill_stalls(self):
        core = make_core()
        core.memory_access(latency=10_000)
        # Issue far more instructions than the ROB can hold behind the miss.
        core.advance(1000)
        assert core.stats.cycles >= 10_000

    def test_rob_window_allows_progress_under_miss(self):
        core = make_core()
        core.memory_access(latency=10_000)
        core.advance(100)  # well within the 256-entry ROB
        assert core.stats.cycles < 100

    def test_mshr_limit_waits_for_earliest(self):
        config_mshrs = SystemConfig().l1d.mshrs
        core = make_core()
        # Fill the MSHRs with long misses plus one short one.
        for i in range(config_mshrs - 1):
            core.memory_access(latency=5000)
        core.memory_access(latency=50)
        before = core.stats.cycles
        core.memory_access(latency=5000)  # must wait for a free MSHR
        # The wait should be bounded by the short miss, not a long one.
        assert core.stats.cycles - before < 200

    def test_stall_accounting(self):
        core = make_core()
        core.memory_access(latency=500, dependent=False)
        core.memory_access(latency=500, dependent=True)
        assert core.stats.l1_miss_stalls > 0

    def test_drain_clears_all(self):
        core = make_core()
        for _ in range(5):
            core.memory_access(latency=300)
        core.drain()
        core.advance(6)
        # No residual misses: the advance costs exactly one cycle.
        assert core.stats.ipc > 0
