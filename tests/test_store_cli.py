"""Tests for the ``repro suite`` and ``repro store`` CLI commands."""

import gzip
import json
import os

import pytest

from repro.cli import main

#: Tiny scale so each suite invocation stays sub-second per cell batch.
TINY = ["--accesses", "120", "--seed", "1"]


def _suite(store_root, *extra):
    return main(
        ["suite", "fig01", "--store", store_root, "-q", *TINY, *extra]
    )


class TestSuiteCommand:
    def test_cold_then_warm(self, tmp_path, capsys):
        store_root = str(tmp_path / "store")
        assert _suite(store_root) == 0
        cold = capsys.readouterr().out
        assert "1 computed" in cold
        assert _suite(store_root) == 0
        warm = capsys.readouterr().out
        assert "1 experiment(s) cached, 0 computed" in warm
        assert "0 simulation(s) executed" in warm

    def test_warm_rows_byte_identical(self, tmp_path, capsys):
        store_root = str(tmp_path / "store")
        cold_json = str(tmp_path / "cold.json")
        warm_json = str(tmp_path / "warm.json")
        assert _suite(store_root, "--json", cold_json) == 0
        assert _suite(store_root, "--json", warm_json) == 0
        capsys.readouterr()
        cold = json.load(open(cold_json))["data"]["results"]
        warm = json.load(open(warm_json))["data"]["results"]
        assert json.dumps(cold) == json.dumps(warm)

    def test_no_store_disables_caching(self, tmp_path, capsys):
        store_root = str(tmp_path / "store")
        assert _suite(store_root, "--no-store") == 0
        out = capsys.readouterr().out
        assert "store disabled" in out
        assert not os.path.exists(store_root)

    def test_no_store_overrides_env_var(self, tmp_path, capsys, monkeypatch):
        """--no-store wins over $REPRO_STORE: no cells read or written."""
        env_root = str(tmp_path / "env-store")
        monkeypatch.setenv("REPRO_STORE", env_root)
        assert main(["suite", "fig01", "--no-store", "-q", *TINY]) == 0
        assert "store disabled" in capsys.readouterr().out
        assert not os.path.exists(env_root)
        assert os.environ["REPRO_STORE"] == env_root  # restored after

    def test_validates_names(self, tmp_path, capsys):
        assert main(["suite", "nonsense", "--store", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert main(["suite", "--store", str(tmp_path)]) == 2
        assert main(["suite", "fig01", "--all", "--store", str(tmp_path)]) == 2

    def test_store_env_var_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["suite", "fig01", "-q", *TINY]) == 0
        capsys.readouterr()
        assert os.path.isdir(str(tmp_path / "env-store"))


class TestStoreCommand:
    @pytest.fixture
    def populated(self, tmp_path, capsys):
        store_root = str(tmp_path / "store")
        assert _suite(store_root) == 0
        capsys.readouterr()
        return store_root

    def test_stats(self, populated, capsys):
        assert main(["store", "--store", populated, "stats"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.cli-output.v1"
        assert document["command"] == "store-stats"
        stats = document["data"]
        assert stats["kinds"]["experiment"] == 1
        assert stats["kinds"]["cell"] > 0
        assert stats["records"] == stats["kinds"]["experiment"] + stats["kinds"]["cell"]

    def test_verify_clean_and_corrupt(self, populated, capsys):
        assert main(["store", "--store", populated, "verify"]) == 0
        assert "0 problem(s)" in capsys.readouterr().out
        shard = next(
            d for d in sorted(os.listdir(populated))
            if len(d) == 2 and os.path.isdir(os.path.join(populated, d))
        )
        victim = os.path.join(
            populated, shard, sorted(os.listdir(os.path.join(populated, shard)))[0]
        )
        content = open(victim, "rb").read()
        open(victim, "wb").write(content[:-10])
        assert main(["store", "--store", populated, "verify"]) == 1
        assert "BAD" in capsys.readouterr().out

    def test_gc_noop_when_fresh(self, populated, capsys):
        assert main(["store", "--store", populated, "gc"]) == 0
        assert "removed 0 record(s)" in capsys.readouterr().out

    def test_gc_everything(self, populated, capsys):
        assert main(["store", "--store", populated, "gc", "--everything"]) == 0
        out = capsys.readouterr().out
        assert "removed 0" not in out
        assert main(["store", "--store", populated, "stats"]) == 0
        assert json.loads(capsys.readouterr().out)["data"]["records"] == 0

    def test_export_import_roundtrip(self, populated, tmp_path, capsys):
        archive = str(tmp_path / "export.jsonl.gz")
        assert main(["store", "--store", populated, "export", archive]) == 0
        capsys.readouterr()
        other = str(tmp_path / "other-store")
        assert main(["store", "--store", other, "import", archive]) == 0
        assert "imported" in capsys.readouterr().out
        # warm run against the imported store: everything cached
        assert _suite(other) == 0
        assert "0 computed" in capsys.readouterr().out

    def test_import_truncated_archive_fails(self, populated, tmp_path, capsys):
        archive = str(tmp_path / "export.jsonl.gz")
        assert main(["store", "--store", populated, "export", archive]) == 0
        capsys.readouterr()
        lines = gzip.open(archive, "rt").read().splitlines()
        with gzip.open(archive, "wt") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")  # drop count trailer
        assert main(["store", "--store", populated, "import", archive]) == 2
        assert "truncated" in capsys.readouterr().err
