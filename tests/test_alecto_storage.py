"""Tests reproducing the Table III storage formulae exactly."""

import pytest

from repro.selection.alecto.storage import (
    alecto_storage_bits,
    alecto_storage_bits_excluding_sandbox,
    allocation_table_bits,
    bandit_storage_bits,
    extended_bandit_storage_bits,
    sample_table_bits,
    sandbox_table_bits,
)


class TestTable3Formulae:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_allocation_table(self, p):
        assert allocation_table_bits(p) == 640 + 256 * p

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_sample_table(self, p):
        assert sample_table_bits(p) == 1600 + 1024 * p

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_sandbox_table(self, p):
        assert sandbox_table_bits(p) == 3072 + 512 * p

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_total(self, p):
        assert alecto_storage_bits(p) == 5312 + 1792 * p

    def test_paper_headline_numbers_at_p3(self):
        total = alecto_storage_bits(3)
        assert total == 5312 + 1792 * 3
        assert total / 8 / 1024 == pytest.approx(1.30, abs=0.02)  # ~1.30 KB
        no_sandbox = alecto_storage_bits_excluding_sandbox(3)
        assert no_sandbox == 2240 + 1280 * 3
        assert no_sandbox / 8 == pytest.approx(760, abs=10)  # ~760 B

    def test_linear_scaling(self):
        deltas = [
            alecto_storage_bits(p + 1) - alecto_storage_bits(p) for p in range(1, 6)
        ]
        assert len(set(deltas)) == 1  # perfectly linear in P


class TestBanditComparison:
    def test_bandit_base(self):
        # 8 bytes x #actions^P.
        assert bandit_storage_bits(2, 3) == 8 * 8 * 8

    def test_extended_bandit_is_4kb(self):
        # (M+3)^P with M=5, P=3 -> 8^3 arms -> 4 KB.
        bits = extended_bandit_storage_bits(5, 3)
        assert bits == 8 * 8 * 512
        assert bits / 8 / 1024 == pytest.approx(4.0)

    def test_extended_bandit_vs_alecto_ratio(self):
        # Paper: "5.4 times more than Alecto's storage requirements" —
        # against Alecto excluding the dual-purpose Sandbox Table (760 B).
        ratio = extended_bandit_storage_bits(5, 3) / alecto_storage_bits_excluding_sandbox(3)
        assert ratio == pytest.approx(5.4, abs=0.1)

    def test_exponential_vs_linear_growth(self):
        # Adding prefetchers: Bandit grows exponentially, Alecto linearly.
        bandit_growth = bandit_storage_bits(8, 4) / bandit_storage_bits(8, 3)
        alecto_growth = alecto_storage_bits(4) / alecto_storage_bits(3)
        assert bandit_growth > alecto_growth
