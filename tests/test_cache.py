"""Tests for the cache model: hits, LRU, in-flight fills, prefetch records."""

import pytest

from repro.memory.cache import Cache, PrefetchRecord


def make_cache(sets=4, ways=2, latency=4, mshrs=16):
    return Cache("test", num_sets=sets, ways=ways, latency=latency, mshrs=mshrs)


def record(line=0, issue=0, ready=0):
    return PrefetchRecord(
        prefetcher="stride", pc=0x400, issue_cycle=issue, ready_cycle=ready, line=line
    )


class TestBasicOperation:
    def test_cold_miss(self):
        cache = make_cache()
        hit, wait, rec, timely = cache.demand_access(1, cycle=0)
        assert not hit
        assert cache.stats.demand_misses == 1

    def test_fill_then_hit(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        hit, wait, rec, timely = cache.demand_access(1, cycle=10)
        assert hit
        assert wait == 0
        assert rec is None

    def test_probe_no_side_effects(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        assert cache.probe(1)
        assert not cache.probe(2)
        assert cache.stats.demand_accesses == 0

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        assert cache.invalidate(1)
        assert not cache.probe(1)

    def test_write_marks_dirty(self):
        cache = make_cache(sets=1, ways=1)
        cache.fill(0, cycle=0, ready_cycle=0, is_write=True)
        evicted = cache.fill(1, cycle=1, ready_cycle=1)
        assert evicted is not None
        assert evicted.dirty


class TestInFlightFills:
    def test_demand_waits_for_in_flight_fill(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=100)
        hit, wait, rec, timely = cache.demand_access(1, cycle=40)
        assert hit
        assert wait == 60

    def test_completed_fill_no_wait(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=100)
        hit, wait, _, _ = cache.demand_access(1, cycle=150)
        assert wait == 0

    def test_refill_keeps_earlier_ready_cycle(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=50)
        cache.fill(1, cycle=10, ready_cycle=300)
        _, wait, _, _ = cache.demand_access(1, cycle=60)
        assert wait == 0


class TestPrefetchTracking:
    def test_timely_prefetch_hit(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=10, prefetch=record(line=1, ready=10))
        hit, wait, rec, timely = cache.demand_access(1, cycle=50)
        assert hit and timely
        assert rec is not None and rec.prefetcher == "stride"
        assert cache.stats.prefetch_hits_timely == 1

    def test_untimely_prefetch_hit(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=100, prefetch=record(line=1, ready=100))
        hit, wait, rec, timely = cache.demand_access(1, cycle=20)
        assert hit and not timely
        assert wait == 80
        assert cache.stats.prefetch_hits_untimely == 1

    def test_first_use_consumes_record(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0, prefetch=record(line=1))
        _, _, first, _ = cache.demand_access(1, cycle=10)
        _, _, second, _ = cache.demand_access(1, cycle=20)
        assert first is not None
        assert second is None

    def test_unused_prefetch_eviction_counted(self):
        cache = make_cache(sets=1, ways=1)
        cache.fill(0, cycle=0, ready_cycle=0, prefetch=record(line=0))
        evicted = cache.fill(1, cycle=1, ready_cycle=1)
        assert evicted.was_unused_prefetch
        assert cache.stats.prefetched_evicted_unused == 1

    def test_used_prefetch_eviction_not_counted(self):
        cache = make_cache(sets=1, ways=1)
        cache.fill(0, cycle=0, ready_cycle=0, prefetch=record(line=0))
        cache.demand_access(0, cycle=5)
        evicted = cache.fill(1, cycle=6, ready_cycle=6)
        assert not evicted.was_unused_prefetch
        assert cache.stats.prefetched_evicted_unused == 0


class TestRefillRecency:
    def test_refill_of_resident_line_refreshes_lru(self):
        """Regression: a refill raced by a demand fill must update recency.

        Previously the refill path skipped the LRU update, so a
        just-refilled line could be chosen as victim over a genuinely
        colder one.
        """
        cache = make_cache(sets=1, ways=2)
        cache.fill(0, cycle=0, ready_cycle=0)
        cache.fill(1, cycle=1, ready_cycle=1)
        cache.fill(0, cycle=2, ready_cycle=2)  # refill of resident line 0
        evicted = cache.fill(2, cycle=3, ready_cycle=3)
        assert evicted.line == 1  # line 0 was refreshed; 1 is the LRU

    def test_refill_still_keeps_earlier_ready_cycle(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=50)
        cache.fill(1, cycle=10, ready_cycle=300)
        _, wait, _, _ = cache.demand_access(1, cycle=60)
        assert wait == 0

    def test_refill_does_not_count_as_prefetch_fill(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        cache.fill(1, cycle=1, ready_cycle=1, prefetch=record(line=1))
        assert cache.stats.prefetch_fills == 0


class TestOccupancyCounter:
    def test_occupancy_tracks_fills_evictions_and_invalidates(self):
        cache = make_cache(sets=2, ways=2)
        assert cache.occupancy() == 0
        for line in range(3):
            cache.fill(line, cycle=line, ready_cycle=line)
        assert cache.occupancy() == 3
        evicted = cache.fill(4, cycle=4, ready_cycle=4)  # set 0 full
        assert evicted is not None
        assert cache.occupancy() == 3  # eviction + insert cancel out
        assert cache.invalidate(4)
        assert cache.occupancy() == 2
        assert not cache.invalidate(4)
        assert cache.occupancy() == 2

    def test_refill_does_not_inflate_occupancy(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        cache.fill(1, cycle=1, ready_cycle=1)
        assert cache.occupancy() == 1


class TestEvictionPolicy:
    def test_lru_victim(self):
        cache = make_cache(sets=1, ways=2)
        cache.fill(0, cycle=0, ready_cycle=0)
        cache.fill(1, cycle=1, ready_cycle=1)
        cache.demand_access(0, cycle=2)  # touch 0 -> 1 becomes LRU
        evicted = cache.fill(2, cycle=3, ready_cycle=3)
        assert evicted.line == 1

    def test_occupancy_bounded(self):
        cache = make_cache(sets=2, ways=2)
        for line in range(50):
            cache.fill(line, cycle=line, ready_cycle=line)
        assert cache.occupancy() <= 4

    def test_capacity_lines(self):
        assert make_cache(sets=4, ways=2).capacity_lines == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", num_sets=0, ways=2, latency=1, mshrs=1)

    def test_hit_rate_stat(self):
        cache = make_cache()
        cache.fill(1, cycle=0, ready_cycle=0)
        cache.demand_access(1, cycle=1)
        cache.demand_access(2, cycle=2)
        assert cache.stats.demand_hit_rate == pytest.approx(0.5)
