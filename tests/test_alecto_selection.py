"""End-to-end tests of AlectoSelection against scripted prefetchers."""

from typing import List, Sequence

import pytest

from repro.common.tables import SetAssociativeTable
from repro.common.types import DemandAccess, PrefetchCandidate
from repro.prefetchers.base import Prefetcher
from repro.selection.alecto import AlectoConfig, AlectoSelection
from repro.selection.alecto.storage import alecto_storage_bits


class ScriptedPrefetcher(Prefetcher):
    """Deterministic prefetcher: always proposes line + offsets."""

    def __init__(self, name, offsets=(1,), temporal=False):
        super().__init__()
        self.name = name
        self.is_temporal = temporal
        self.offsets = offsets
        self._table = SetAssociativeTable(16, ways=4, name=f"{name}_t")

    def _train(self, access, degree) -> List[int]:
        self._table.lookup(access.pc)
        self._table.insert(access.pc, True)
        return [access.line + o for o in self.offsets][:degree]

    def tables(self) -> Sequence[SetAssociativeTable]:
        return (self._table,)


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def make_alecto(offsets_a=(1,), offsets_b=(2,), **config_kwargs):
    prefetchers = [
        ScriptedPrefetcher("a", offsets_a),
        ScriptedPrefetcher("b", offsets_b),
    ]
    return AlectoSelection(prefetchers, AlectoConfig(**config_kwargs))


class TestAllocation:
    def test_fresh_pc_gets_conservative_degree(self):
        alecto = make_alecto(conservative_degree=3)
        decisions = alecto.allocate(access(0))
        assert len(decisions) == 2
        assert all(d.degree == 3 for d in decisions)
        assert all(d.next_level_from is None for d in decisions)

    def test_blocked_prefetcher_receives_nothing(self):
        alecto = make_alecto()
        entry = alecto.allocation_table.lookup(0x400)
        from repro.selection.alecto.states import PrefetcherState

        entry.states[1] = PrefetcherState.ib(0)
        decisions = alecto.allocate(access(0))
        assert [d.prefetcher.name for d in decisions] == ["a"]

    def test_aggressive_prefetcher_gets_boosted_degree(self):
        alecto = make_alecto(conservative_degree=3)
        entry = alecto.allocation_table.lookup(0x400)
        from repro.selection.alecto.states import PrefetcherState

        entry.states[0] = PrefetcherState.ia(2)
        decisions = alecto.allocate(access(0))
        assert decisions[0].degree == 3 + 2 + 1
        assert decisions[0].next_level_from == 3

    def test_fixed_degree_ablation(self):
        alecto = make_alecto(fixed_degree=6)
        entry = alecto.allocation_table.lookup(0x400)
        from repro.selection.alecto.states import PrefetcherState

        entry.states[0] = PrefetcherState.ia(4)
        decisions = alecto.allocate(access(0))
        assert decisions[0].degree == 6
        assert decisions[0].next_level_from is None


class TestEpochLoop:
    def test_accurate_prefetcher_promoted_end_to_end(self):
        alecto = make_alecto(offsets_a=(1,), offsets_b=(50,), epoch_demands=20)
        # Drive a sequential stream: prefetcher a (+1) is always right,
        # b (+50) never confirmed because the demand PC never reaches +50
        # before sandbox eviction... it is, eventually -- use distinct
        # offsets that the stream does not visit.
        line = 0
        for step in range(200):
            acc = access(line)
            alecto.observe_demand(acc)
            decisions = alecto.allocate(acc)
            candidates = []
            for d in decisions:
                candidates.extend(d.prefetcher.train(acc, d.degree))
            final = alecto.filter_prefetches(candidates, acc)
            alecto.post_issue(acc, final)
            line += 1
        entry = alecto.allocation_table.peek(0x400)
        assert entry.states[0].is_aggressive
        assert entry.states[1].is_blocked

    def test_epoch_counter_increments(self):
        alecto = make_alecto(epoch_demands=10)
        for i in range(25):
            acc = access(i)
            alecto.allocate(acc)
        assert alecto.epochs_completed == 2


class TestFiltering:
    def test_sandbox_deduplicates(self):
        alecto = make_alecto()
        acc = access(0)
        candidates = [
            PrefetchCandidate(line=5, prefetcher="a", pc=0x400),
        ]
        first = alecto.filter_prefetches(candidates, acc)
        alecto.post_issue(acc, first)
        again = alecto.filter_prefetches(
            [PrefetchCandidate(line=5, prefetcher="a", pc=0x400)], acc
        )
        assert first and not again

    def test_batch_dedupe_keeps_priority(self):
        alecto = make_alecto()
        acc = access(0)
        batch = [
            PrefetchCandidate(line=5, prefetcher="b", pc=0x400),
            PrefetchCandidate(line=5, prefetcher="a", pc=0x400),
        ]
        survivors = alecto.filter_prefetches(batch, acc)
        assert len(survivors) == 1

    def test_overflow_marked_next_level(self):
        alecto = make_alecto(
            offsets_a=tuple(range(1, 9)), conservative_degree=3
        )
        from repro.selection.alecto.states import PrefetcherState

        entry = alecto.allocation_table.lookup(0x400)
        entry.states[0] = PrefetcherState.ia(4)  # degree 8
        acc = access(0)
        candidates = alecto.prefetchers[0].train(acc, 8)
        survivors = alecto.filter_prefetches(candidates, acc)
        next_level = [c.to_next_level for c in survivors]
        assert next_level[:3] == [False, False, False]
        assert all(next_level[3:])


class TestDeadlockBreaking:
    def test_silent_aggressive_pc_reset(self):
        alecto = make_alecto(dead_threshold=20)
        from repro.selection.alecto.states import PrefetcherState

        entry = alecto.allocation_table.lookup(0x400)
        entry.states[0] = PrefetcherState.ia(3)
        acc = access(0)
        for _ in range(25):
            alecto.post_issue(acc, [])  # no prefetches produced
        assert alecto.deadlock_resets == 1
        assert alecto.allocation_table.peek(0x400).states[0].is_ui


class TestStorage:
    def test_storage_matches_table3(self):
        alecto = make_alecto()
        assert alecto.storage_bits == alecto_storage_bits(2)

    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            AlectoSelection([ScriptedPrefetcher("x"), ScriptedPrefetcher("x")])
