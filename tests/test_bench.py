"""Tests for the simulate() microbenchmark harness (`repro bench`)."""

import json

from repro.sim.bench import (
    BENCH_SCHEMA,
    DECODE_FORMATS,
    check_against,
    main,
    render_record,
    run_bench,
)


def tiny_record(**overrides):
    record = run_bench(
        cases=[("gcc", None), ("gcc", "pmp_only")],
        accesses=overrides.pop("accesses", 400),
        repeats=1,
    )
    record.update(overrides)
    return record


class TestRunBench:
    def test_record_shape(self):
        record = tiny_record()
        assert record["schema"] == BENCH_SCHEMA
        assert record["hot_loop_accesses_per_sec"] > 0
        # The requested cases plus one decode case per container format.
        assert len(record["cases"]) == 2 + len(DECODE_FORMATS)
        for case in record["cases"]:
            assert case["accesses"] == 400
            assert case["accesses_per_sec"] > 0
            assert case["best_seconds"] > 0
        assert record["cases"][0]["selector"] == "none"
        json.dumps(record)  # must be serializable as written

    def test_decode_cases_cover_both_formats(self):
        record = tiny_record()
        decode = [
            c for c in record["cases"] if c["benchmark"] == "trace-decode"
        ]
        assert sorted(c["selector"] for c in decode) == ["v1", "v2"]
        for case in decode:
            assert case["ipc"] == 0.0
            assert case["accesses_per_sec"] > 0

    def test_render(self):
        text = render_record(tiny_record())
        assert "acc/s" in text and "gcc" in text


class TestCheckAgainst:
    def _case(self, rate):
        return {"benchmark": "gcc", "selector": "none",
                "accesses_per_sec": rate}

    def test_within_threshold_passes(self):
        record = {"cases": [self._case(80)]}
        reference = {"cases": [self._case(100)]}
        assert check_against(record, reference, threshold=0.30) == []

    def test_regression_detected(self):
        record = {"cases": [self._case(60)]}
        reference = {"cases": [self._case(100)]}
        failures = check_against(record, reference, threshold=0.30)
        assert len(failures) == 1 and "gcc/none" in failures[0]

    def test_unknown_cases_ignored(self):
        record = {"cases": [self._case(1)]}
        reference = {"cases": [{"benchmark": "mcf", "selector": "none",
                                "accesses_per_sec": 100}]}
        assert check_against(record, reference) == []

    def test_faster_is_never_a_regression(self):
        record = {"cases": [self._case(500)]}
        reference = {"cases": [self._case(100)]}
        assert check_against(record, reference) == []


class TestMain:
    def test_writes_record_and_checks(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main([
            "--accesses", "300", "--repeats", "1", "--out", str(out),
        ])
        assert code == 0
        record = json.loads(out.read_text())
        assert record["schema"] == BENCH_SCHEMA
        # Self-check against the record just written must pass.
        code = main([
            "--accesses", "300", "--repeats", "1", "--no-write",
            "--check", str(out), "--threshold", "0.95",
        ])
        assert code == 0

    def test_check_fails_on_regression(self, tmp_path):
        reference = {
            "schema": BENCH_SCHEMA,
            "cases": [
                {"benchmark": "gcc", "selector": "none",
                 "accesses_per_sec": 1e12},
            ],
        }
        path = tmp_path / "BENCH_ref.json"
        path.write_text(json.dumps(reference))
        code = main([
            "--accesses", "300", "--repeats", "1", "--no-write",
            "--check", str(path),
        ])
        assert code == 1
