"""Tests for the single- and multi-core simulation loops."""

import pytest

from repro.common.config import SystemConfig, multicore_config
from repro.prefetchers import make_composite
from repro.selection import AlectoSelection, IPCPSelection
from repro.sim import simulate, simulate_multicore
from repro.workloads.profiles import profile

MB = 1 << 20


def stream_profile(name="streamy", mem_ratio=0.3):
    return profile(name, "test", True, mem_ratio, [
        (0.9, "stream", {"footprint": 32 * MB, "run_length": 800}),
        (0.1, "random", {"footprint": MB, "pc_count": 4}),
    ])


class TestSingleCore:
    def test_baseline_run_reports_ipc(self):
        trace = stream_profile().generate(2000, seed=1)
        result = simulate(trace, None)
        assert result.ipc > 0
        assert result.core.instructions == sum(r.instructions for r in trace)
        assert result.selector_name == "none"

    def test_prefetching_beats_baseline_on_streams(self):
        trace = stream_profile().generate(6000, seed=1)
        base = simulate(trace, None)
        result = simulate(trace, AlectoSelection(make_composite()))
        assert result.ipc > base.ipc

    def test_deterministic(self):
        trace = stream_profile().generate(2000, seed=1)
        a = simulate(trace, AlectoSelection(make_composite()))
        b = simulate(trace, AlectoSelection(make_composite()))
        assert a.ipc == b.ipc
        assert a.metrics.issued == b.metrics.issued

    def test_metrics_populated(self):
        trace = stream_profile().generate(4000, seed=1)
        result = simulate(trace, IPCPSelection(make_composite()))
        m = result.metrics
        assert m.issued > 0
        assert m.covered_timely + m.covered_untimely > 0
        assert result.table_misses > 0
        assert sum(result.training_occurrences.values()) > 0

    def test_energy_report_present(self):
        trace = stream_profile().generate(1000, seed=1)
        result = simulate(trace, IPCPSelection(make_composite()))
        assert result.energy.hierarchy_pj > 0

    def test_fresh_selector_required_per_run(self):
        # Reusing a selector across traces keeps state; a fresh one must
        # still produce identical results for identical traces.
        trace = stream_profile().generate(1500, seed=2)
        first = simulate(trace, AlectoSelection(make_composite()))
        second = simulate(trace, AlectoSelection(make_composite()))
        assert first.issued_by_prefetcher == second.issued_by_prefetcher


class TestMulticore:
    def test_core_count_checked(self):
        traces = [stream_profile().generate(100, seed=s) for s in range(2)]
        with pytest.raises(ValueError):
            simulate_multicore(traces, lambda c: None, config=SystemConfig(cores=4))

    def test_per_core_results(self):
        traces = [stream_profile().generate(800, seed=s) for s in range(2)]
        result = simulate_multicore(
            traces, lambda c: None, config=multicore_config(2)
        )
        assert len(result.cores) == 2
        assert all(r.ipc > 0 for r in result.cores)

    def test_weighted_speedup_identity(self):
        traces = [stream_profile().generate(500, seed=s) for s in range(2)]
        base = simulate_multicore(traces, lambda c: None, config=multicore_config(2))
        again = simulate_multicore(traces, lambda c: None, config=multicore_config(2))
        assert again.weighted_speedup(base) == pytest.approx(1.0)

    def test_prefetching_helps_multicore(self):
        traces = [stream_profile().generate(2500, seed=s) for s in range(2)]
        config = multicore_config(2)
        base = simulate_multicore(traces, lambda c: None, config=config)
        pf = simulate_multicore(
            traces,
            lambda c: AlectoSelection(make_composite()),
            config=config,
        )
        assert pf.weighted_speedup(base) > 1.0

    def test_contention_slows_cores_down(self):
        # The same trace runs slower per-core when seven bandwidth-hungry
        # neighbours share the memory system.
        solo_trace = stream_profile().generate(1200, seed=9)
        solo = simulate(solo_trace, None, config=SystemConfig())
        traces = [stream_profile().generate(1200, seed=9 + s) for s in range(8)]
        crowd = simulate_multicore(traces, lambda c: None, config=multicore_config(8))
        assert crowd.cores[0].ipc < solo.ipc

    def test_total_instructions(self):
        traces = [stream_profile().generate(300, seed=s) for s in range(2)]
        result = simulate_multicore(traces, lambda c: None, config=multicore_config(2))
        expected = sum(sum(r.instructions for r in t) for t in traces)
        assert result.total_instructions == expected
