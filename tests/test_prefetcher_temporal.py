"""Tests for the Triangel-style temporal prefetcher."""

from repro.common.types import DemandAccess
from repro.prefetchers.temporal import METADATA_ENTRY_BYTES, TemporalPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def replay(pf, sequence, laps, degree=1, pc=0x400):
    produced = []
    for _ in range(laps):
        for line in sequence:
            produced = pf.train(access(line, pc), degree=degree)
    return produced


class TestMarkovPrediction:
    def test_successor_predicted_on_second_lap(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        sequence = [10, 500, 3, 999, 42]
        replay(pf, sequence, laps=1)
        produced = pf.train(access(10), degree=1)
        assert [c.line for c in produced] == [500]

    def test_degree_clamped_to_one(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        replay(pf, [1, 2, 3, 4], laps=2)
        produced = pf.train(access(1), degree=5)
        assert len(produced) <= 1

    def test_candidates_target_next_level(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        replay(pf, [1, 2, 3], laps=2)
        produced = pf.train(access(1), degree=1)
        assert produced and produced[0].to_next_level

    def test_per_pc_training_units(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        # Two PCs with interleaved but distinct sequences.
        pf.train(access(1, pc=0xA), degree=0)
        pf.train(access(100, pc=0xB), degree=0)
        pf.train(access(2, pc=0xA), degree=0)
        pf.train(access(200, pc=0xB), degree=0)
        assert [c.line for c in pf.train(access(1, pc=0xA), degree=1)] == [2]

    def test_successor_update_on_conflict(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        replay(pf, [1, 2], laps=3)
        # Re-train the successor of 1 to be 9, repeatedly.
        for _ in range(5):
            pf.train(access(1), degree=0)
            pf.train(access(9), degree=0)
        produced = pf.train(access(1), degree=1)
        assert produced and produced[0].line == 9


class TestCapacity:
    def test_metadata_entries_scale_with_budget(self):
        small = TemporalPrefetcher(metadata_bytes=128 * 1024)
        large = TemporalPrefetcher(metadata_bytes=1024 * 1024)
        assert large._metadata.num_entries > small._metadata.num_entries
        expected = 1024 * 1024 // METADATA_ENTRY_BYTES
        assert abs(large._metadata.num_entries - expected) < 32

    def test_small_table_thrashes_long_sequence(self):
        pf = TemporalPrefetcher(metadata_bytes=4 * 1024)  # ~340 entries
        sequence = list(range(0, 4000, 2))  # 2000 distinct lines
        replay(pf, sequence, laps=2)
        stats = pf._metadata.stats
        assert stats.evictions > 0

    def test_flag_attributes(self):
        pf = TemporalPrefetcher()
        assert pf.is_temporal
        assert pf.fills_next_level
        assert pf.max_degree == 1


class TestWouldHandle:
    def test_known_line_claimed(self):
        pf = TemporalPrefetcher(metadata_bytes=64 * 1024)
        replay(pf, [1, 2, 3], laps=2)
        assert pf.would_handle(access(2))

    def test_unknown_line_not_claimed(self):
        pf = TemporalPrefetcher()
        assert not pf.would_handle(access(12345))
