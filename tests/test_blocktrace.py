"""Tests for the seekable block-compressed trace subsystem (``repro.trace.v2``)."""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.cpu.blocktrace import (
    BLOCK_RECORDS,
    INDEX_MAGIC,
    TRACE_V2_MAGIC,
    TRACE_V2_SCHEMA,
    BlockTraceReader,
    BlockTraceWriter,
    TraceSlice,
    available_codecs,
    default_codec,
    read_info_v2,
    write_trace_v2,
)
from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import (
    TraceFormatError,
    TraceReader,
    convert_trace,
    open_trace,
    read_info,
    sniff_trace_version,
    write_trace,
)

record_strategy = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=2**64 - 1),
    address=st.integers(min_value=0, max_value=2**64 - 1),
    access_type=st.sampled_from([AccessType.LOAD, AccessType.STORE]),
    nonmem_before=st.integers(min_value=0, max_value=2**32 - 1),
    dependent=st.booleans(),
)

#: Codecs testable in any environment (zstd only where installed).
_PORTABLE_CODECS = [c for c in available_codecs() if c != "zstd"]


def lcg_records(n, seed=1):
    state = (seed * 0x9E3779B97F4A7C15) & (2**64 - 1) or 1
    records = []
    for _ in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
        records.append(
            TraceRecord(
                pc=state >> 24,
                address=(state >> 4) & (2**44 - 1),
                access_type=(
                    AccessType.STORE if state % 5 == 0 else AccessType.LOAD
                ),
                nonmem_before=state % 300,
                dependent=state % 7 == 0,
            )
        )
    return records


def write_fixture(path, records, **options):
    options.setdefault("codec", "gzip")
    options.setdefault("block_records", 32)
    write_trace_v2(str(path), records, **options)
    return str(path)


class TestRoundTrip:
    @given(
        records=st.lists(record_strategy, max_size=80),
        block_records=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_identity(self, records, block_records, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "t.trace.v2")
        assert write_trace_v2(
            path, records, codec="gzip", block_records=block_records
        ) == len(records)
        reader = BlockTraceReader(path)
        assert list(reader) == records
        assert reader.count == len(records)

    @pytest.mark.parametrize("codec", _PORTABLE_CODECS)
    def test_codecs_round_trip(self, tmp_path, codec):
        records = lcg_records(300)
        path = write_fixture(tmp_path / "t.trace.v2", records, codec=codec)
        reader = BlockTraceReader(path)
        assert reader.codec == codec
        assert list(reader) == records

    def test_zstd_round_trip_where_available(self, tmp_path):
        pytest.importorskip("zstandard")
        records = lcg_records(300)
        path = write_fixture(tmp_path / "t.trace.v2", records, codec="zstd")
        assert BlockTraceReader(path).codec == "zstd"
        assert list(BlockTraceReader(path)) == records

    def test_zstd_unavailable_is_a_clear_error(self, tmp_path):
        if "zstd" in available_codecs():
            pytest.skip("zstandard installed")
        with pytest.raises(ValueError, match="zstd"):
            BlockTraceWriter(str(tmp_path / "t.trace.v2"), codec="zstd")

    def test_default_codec_is_available(self):
        assert default_codec() in available_codecs()

    @pytest.mark.parametrize("count", [0, 1, 31, 32, 33, 64, 100])
    def test_block_boundaries(self, tmp_path, count):
        records = lcg_records(count, seed=count + 1)
        path = write_fixture(tmp_path / "t.trace.v2", records)
        reader = BlockTraceReader(path)
        assert list(reader) == records
        assert read_info(path)["count"] == count

    def test_reader_is_reiterable(self, tmp_path):
        records = lcg_records(50)
        path = write_fixture(tmp_path / "t.trace.v2", records)
        reader = BlockTraceReader(path)
        assert list(reader) == records
        assert list(reader) == records  # baseline + selector run pattern

    def test_align_forces_phase_edges(self, tmp_path):
        # With align=N, no block spans a multiple of N: a phase-aligned
        # slice decodes no block shared with a neighbouring phase.
        records = lcg_records(250)
        path = write_fixture(
            tmp_path / "t.trace.v2", records, block_records=32, align=100
        )
        reader = BlockTraceReader(path)
        assert list(reader) == records
        for entry in reader.blocks:
            first_edge = (entry.start // 100 + 1) * 100
            # a block never crosses a phase edge strictly inside it
            assert not (entry.start < first_edge < entry.start + entry.records)


class TestSeek:
    @given(
        n=st.integers(min_value=0, max_value=120),
        total=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_seek_equals_skip(self, n, total, tmp_path_factory):
        n = min(n, total)
        records = lcg_records(total, seed=total + 3)
        path = write_fixture(
            tmp_path_factory.mktemp("seek") / "t.trace.v2", records,
            block_records=16,
        )
        assert list(BlockTraceReader(path).seek(n)) == records[n:]

    def test_seek_decodes_at_most_one_block_before_first_yield(self, tmp_path):
        records = lcg_records(320)
        path = write_fixture(tmp_path / "t.trace.v2", records, block_records=32)
        reader = BlockTraceReader(path)
        iterator = reader.seek(200)
        first = next(iterator)
        assert first == records[200]
        assert reader.blocks_decoded == 1

    def test_seek_out_of_range(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(10))
        reader = BlockTraceReader(path)
        with pytest.raises(IndexError):
            reader.seek(11)
        with pytest.raises(IndexError):
            reader.seek(-1)
        assert list(reader.seek(10)) == []

    def test_slice_window(self, tmp_path):
        records = lcg_records(100)
        path = write_fixture(tmp_path / "t.trace.v2", records, block_records=8)
        reader = BlockTraceReader(path)
        window = reader.slice(17, 53)
        assert isinstance(window, TraceSlice)
        assert window.count == 36
        assert list(window) == records[17:53]
        assert list(window) == records[17:53]  # re-iterable

    def test_slice_decodes_only_covering_blocks(self, tmp_path):
        records = lcg_records(320)
        path = write_fixture(tmp_path / "t.trace.v2", records, block_records=32)
        reader = BlockTraceReader(path)
        assert list(reader.slice(64, 96)) == records[64:96]
        assert reader.blocks_decoded == 1  # exactly the covering block


class TestShard:
    @given(
        total=st.integers(min_value=0, max_value=150),
        shards=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_concatenation_is_the_full_stream(
        self, total, shards, tmp_path_factory
    ):
        records = lcg_records(total, seed=total + 11)
        path = write_fixture(
            tmp_path_factory.mktemp("shard") / "t.trace.v2", records,
            block_records=16,
        )
        reader = BlockTraceReader(path)
        combined = []
        for index in range(shards):
            combined.extend(reader.shard(index, shards))
        assert combined == records

    def test_shards_are_balanced(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(100))
        reader = BlockTraceReader(path)
        sizes = [reader.shard(i, 7).count for i in range(7)]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_bad_shard_arguments(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(10))
        reader = BlockTraceReader(path)
        with pytest.raises(ValueError):
            reader.shard(0, 0)
        with pytest.raises(ValueError):
            reader.shard(3, 3)


class TestConvert:
    @given(records=st.lists(record_strategy, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_v1_to_v2_round_trip(self, records, tmp_path_factory):
        base = tmp_path_factory.mktemp("conv")
        v1 = str(base / "t.trace.gz")
        v2 = str(base / "t.trace.v2")
        write_trace(v1, records, meta={"benchmark": "x", "seed": 1})
        info = convert_trace(v1, v2, format="v2", codec="gzip")
        assert info["count"] == len(records)
        reader = open_trace(v2)
        assert isinstance(reader, BlockTraceReader)
        assert list(reader) == records
        assert reader.meta == {"benchmark": "x", "seed": 1}

    def test_v2_to_v1_round_trip(self, tmp_path):
        records = lcg_records(77)
        meta = {"benchmark": "y", "accesses": 77}
        v2 = write_fixture(
            tmp_path / "t.trace.v2", records, meta=meta, align=25
        )
        v1 = str(tmp_path / "t.trace.gz")
        convert_trace(v2, v1, format="v1")
        reader = open_trace(v1)
        assert isinstance(reader, TraceReader)
        assert list(reader) == records
        # meta copied verbatim: the container changed, the identity didn't
        assert reader.meta == meta

    def test_v2_options_rejected_for_v1_target(self, tmp_path):
        v2 = write_fixture(tmp_path / "t.trace.v2", lcg_records(5))
        with pytest.raises(ValueError, match="v1"):
            convert_trace(v2, str(tmp_path / "o.trace.gz"),
                          format="v1", codec="gzip")

    def test_open_trace_dispatches_both_formats(self, tmp_path):
        records = lcg_records(20)
        v1 = str(tmp_path / "a.trace.gz")
        write_trace(v1, records)
        v2 = write_fixture(tmp_path / "a.trace.v2", records)
        assert sniff_trace_version(v1) == "v1"
        assert sniff_trace_version(v2) == "v2"
        assert isinstance(open_trace(v1), TraceReader)
        assert isinstance(open_trace(v2), BlockTraceReader)
        assert list(open_trace(v1)) == list(open_trace(v2))

    def test_sniff_garbage(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"neither format at all")
        with pytest.raises(TraceFormatError):
            sniff_trace_version(str(path))


class TestWriter:
    def test_meta_and_header_round_trip(self, tmp_path):
        meta = {"benchmark": "mcf", "accesses": 9, "seed": 2}
        path = str(tmp_path / "t.trace.v2")
        with BlockTraceWriter(path, meta=meta, codec="gzip") as writer:
            writer.write_all(lcg_records(9))
        reader = BlockTraceReader(path)
        assert reader.meta == meta
        assert reader.schema == TRACE_V2_SCHEMA
        assert reader.block_records == BLOCK_RECORDS

    def test_write_after_close_raises(self, tmp_path):
        writer = BlockTraceWriter(str(tmp_path / "t.trace.v2"), codec="gzip")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write(lcg_records(1)[0])

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            BlockTraceWriter(str(tmp_path / "t.trace.v2"), codec="lz4")

    def test_bad_block_records_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            BlockTraceWriter(
                str(tmp_path / "t.trace.v2"), codec="gzip", block_records=0
            )

    def test_interrupted_write_leaves_loudly_truncated_file(self, tmp_path):
        path = str(tmp_path / "t.trace.v2")
        with pytest.raises(RuntimeError):
            with BlockTraceWriter(path, codec="gzip") as writer:
                writer.write_all(lcg_records(3))
                raise RuntimeError("interrupted")
        with pytest.raises(TraceFormatError, match="trailer"):
            BlockTraceReader(path)


class TestCorruption:
    def _trailer_offset(self, blob):
        return len(blob) - struct.calcsize("<Q8s")

    def test_truncated_file_detected(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(200))
        blob = open(path, "rb").read()
        clipped = tmp_path / "clipped.trace.v2"
        clipped.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError, match="trailer|truncated"):
            BlockTraceReader(str(clipped))

    def test_truncated_block_detected(self, tmp_path):
        # Clip bytes out of a block body but keep the index + trailer:
        # the index's byte-offset chain no longer adds up.
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(200))
        blob = open(path, "rb").read()
        reader = BlockTraceReader(path)
        victim = reader.blocks[2]
        doctored = (
            blob[: victim.offset] + blob[victim.offset + 5 :]
        )
        bad = tmp_path / "bad.trace.v2"
        bad.write_bytes(doctored)
        with pytest.raises(TraceFormatError):
            list(BlockTraceReader(str(bad)))

    def test_flipped_payload_bit_detected(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(200))
        blob = bytearray(open(path, "rb").read())
        reader = BlockTraceReader(path)
        entry = reader.blocks[1]
        # flip one bit inside block 1's compressed payload
        blob[entry.offset + 4 + entry.compressed_bytes // 2] ^= 0x40
        bad = tmp_path / "bad.trace.v2"
        bad.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="checksum|block"):
            list(BlockTraceReader(str(bad)))

    def test_doctored_index_count_detected(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(64))
        blob = open(path, "rb").read()
        assert blob.count(b'"count": 64') == 1
        doctored = blob.replace(b'"count": 64', b'"count": 65')
        bad = tmp_path / "bad.trace.v2"
        bad.write_bytes(doctored)
        with pytest.raises(TraceFormatError):
            BlockTraceReader(str(bad))

    def test_stripped_trailer_detected(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(10))
        blob = open(path, "rb").read()
        assert blob.endswith(INDEX_MAGIC)
        bad = tmp_path / "bad.trace.v2"
        bad.write_bytes(blob[: self._trailer_offset(blob)])
        with pytest.raises(TraceFormatError, match="trailer"):
            BlockTraceReader(str(bad))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace.v2"
        path.write_bytes(b"NOTATRACEATALL" + b"\x00" * 64)
        with pytest.raises(TraceFormatError):
            BlockTraceReader(str(path))
        assert TRACE_V2_MAGIC not in path.read_bytes()


class TestInfo:
    def test_info_reports_geometry(self, tmp_path):
        records = lcg_records(100)
        path = write_fixture(tmp_path / "t.trace.v2", records, block_records=32)
        info = read_info_v2(path)
        assert info["schema"] == TRACE_V2_SCHEMA
        assert info["count"] == 100
        assert info["codec"] == "gzip"
        assert info["blocks"] == 4  # ceil(100/32)
        geometry = info["block_geometry"]
        assert geometry["blocks"] == 4
        assert geometry["packed_bytes"] == 100 * 21
        assert geometry["max_records"] <= 32
        json.dumps(info)  # --json output must serialize as-is

    def test_read_info_dispatches(self, tmp_path):
        records = lcg_records(12)
        v1 = str(tmp_path / "a.trace.gz")
        write_trace(v1, records)
        v2 = write_fixture(tmp_path / "a.trace.v2", records)
        assert read_info(v1)["schema"] == "repro.trace.v1"
        assert read_info(v2)["schema"] == TRACE_V2_SCHEMA
        assert read_info(v1)["count"] == read_info(v2)["count"] == 12

    def test_info_is_o_index_not_o_file(self, tmp_path):
        path = write_fixture(tmp_path / "t.trace.v2", lcg_records(500))
        reader = BlockTraceReader(path)
        assert reader.blocks_decoded == 0  # open touches header+index only
        read_info_v2(path)  # info never decodes a block either
