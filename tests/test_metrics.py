"""Tests for the Fig. 10 prefetch metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import PrefetchMetrics


class TestDerivedMetrics:
    def test_accuracy(self):
        m = PrefetchMetrics(covered_timely=6, covered_untimely=2, issued=10)
        assert m.accuracy == pytest.approx(0.8)

    def test_coverage(self):
        m = PrefetchMetrics(covered_timely=3, covered_untimely=1, uncovered=4)
        assert m.coverage == pytest.approx(0.5)

    def test_timeliness(self):
        m = PrefetchMetrics(covered_timely=3, covered_untimely=1)
        assert m.timeliness == pytest.approx(0.75)

    def test_zero_denominators(self):
        m = PrefetchMetrics()
        assert m.accuracy == 0.0
        assert m.coverage == 0.0
        assert m.timeliness == 0.0

    def test_normalized_sums_to_one_without_overprediction(self):
        m = PrefetchMetrics(
            covered_timely=2, covered_untimely=3, uncovered=5, overpredicted=4
        )
        n = m.normalized()
        assert n["covered_timely"] + n["covered_untimely"] + n["uncovered"] == (
            pytest.approx(1.0)
        )
        assert n["overprediction"] == pytest.approx(0.4)

    def test_merge(self):
        a = PrefetchMetrics(covered_timely=1, uncovered=2, issued=3)
        b = PrefetchMetrics(covered_untimely=4, overpredicted=5, issued=6)
        merged = a.merge(b)
        assert merged.covered_timely == 1
        assert merged.covered_untimely == 4
        assert merged.uncovered == 2
        assert merged.overpredicted == 5
        assert merged.issued == 9


@given(
    ct=st.integers(0, 1000),
    cu=st.integers(0, 1000),
    unc=st.integers(0, 1000),
    op=st.integers(0, 1000),
    issued=st.integers(0, 5000),
)
def test_metric_bounds(ct, cu, unc, op, issued):
    m = PrefetchMetrics(
        covered_timely=ct, covered_untimely=cu, uncovered=unc,
        overpredicted=op, issued=max(issued, ct + cu),
    )
    assert 0.0 <= m.coverage <= 1.0
    assert 0.0 <= m.timeliness <= 1.0
    assert 0.0 <= m.accuracy <= 1.0
