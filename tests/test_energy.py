"""Tests for the CACTI-style energy model."""

import pytest

from repro.common.config import SystemConfig
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.energy import DRAM_LINE_PJ, EnergyModel, EnergyReport, sram_access_energy_pj


class TestAccessEnergy:
    def test_anchor_value(self):
        assert sram_access_energy_pj(32 * 1024 * 8) == pytest.approx(10.0)

    def test_sqrt_scaling(self):
        small = sram_access_energy_pj(32 * 1024 * 8)
        large = sram_access_energy_pj(4 * 32 * 1024 * 8)
        assert large == pytest.approx(2 * small)

    def test_zero_bits(self):
        assert sram_access_energy_pj(0) == 0.0


class TestReport:
    def test_hierarchy_energy_sums_components(self):
        report = EnergyReport(
            l1_pj=1, l2_pj=2, llc_pj=3, dram_pj=4,
            prefetcher_tables_pj=5, selector_pj=6,
        )
        assert report.hierarchy_pj == 21

    def test_model_counts_accesses(self):
        model = EnergyModel(SystemConfig())
        report = model.report(
            l1_accesses=100, l2_accesses=10, llc_accesses=5,
            dram_reads=2, prefetchers=[],
        )
        assert report.l1_pj == pytest.approx(100 * 10.0)
        assert report.dram_pj == pytest.approx(2 * DRAM_LINE_PJ)

    def test_prefetcher_energy_from_table_traffic(self):
        model = EnergyModel(SystemConfig())
        prefetcher = StridePrefetcher()
        from repro.common.types import DemandAccess

        for i in range(20):
            prefetcher.train(DemandAccess(pc=0x400, address=i * 64), degree=0)
        report = model.report(0, 0, 0, 0, prefetchers=[prefetcher])
        assert report.prefetcher_tables_pj > 0
        assert "stride" in report.per_prefetcher_pj

    def test_untrained_prefetcher_zero_energy(self):
        model = EnergyModel(SystemConfig())
        report = model.report(0, 0, 0, 0, prefetchers=[StridePrefetcher()])
        assert report.prefetcher_tables_pj == 0.0

    def test_selector_energy(self):
        model = EnergyModel(SystemConfig())
        with_selector = model.report(
            0, 0, 0, 0, prefetchers=[],
            selector_storage_bits=8192, selector_accesses=1000,
        )
        assert with_selector.selector_pj > 0
