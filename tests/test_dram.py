"""Tests for the DRAM bandwidth/queueing model."""

import pytest

from repro.common.config import DRAMConfig, ddr3_1600, ddr4_2400
from repro.memory.dram import DRAM


class TestLatency:
    def test_idle_access_near_base_latency(self):
        dram = DRAM(ddr4_2400())
        latency = dram.access(line=0, cycle=0)
        assert latency >= dram.config.base_latency - DRAM.ROW_HIT_DISCOUNT
        assert latency <= dram.config.base_latency

    def test_row_hit_cheaper_than_row_miss(self):
        dram = DRAM(ddr4_2400())
        first = dram.access(line=0, cycle=0)
        # Same row, long after the bank frees up.
        second = dram.access(line=1, cycle=10_000)
        assert second < first

    def test_row_stats(self):
        dram = DRAM(ddr4_2400())
        dram.access(line=0, cycle=0)
        dram.access(line=1, cycle=1000)
        dram.access(line=DRAM.ROW_LINES * 999, cycle=2000)
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 2


class TestQueueing:
    def test_burst_queues(self):
        dram = DRAM(ddr4_2400(channels=1))
        latencies = [
            dram.access(line=i * DRAM.ROW_LINES * 7, cycle=0) for i in range(20)
        ]
        assert latencies[-1] > latencies[0]
        assert dram.stats.total_queue_delay > 0

    def test_spread_requests_do_not_queue(self):
        dram = DRAM(ddr4_2400())
        latencies = [
            dram.access(line=i * DRAM.ROW_LINES * 7, cycle=i * 1000)
            for i in range(10)
        ]
        assert max(latencies) - min(latencies) <= DRAM.ROW_HIT_DISCOUNT

    def test_more_channels_less_queueing(self):
        def total_delay(channels):
            dram = DRAM(ddr4_2400(channels=channels))
            for i in range(64):
                dram.access(line=i * DRAM.ROW_LINES * 3, cycle=0)
            return dram.stats.total_queue_delay

        assert total_delay(4) < total_delay(1)

    def test_ddr4_faster_under_load_than_ddr3(self):
        def last_latency(config):
            dram = DRAM(config)
            latency = 0
            for i in range(64):
                latency = dram.access(line=i * DRAM.ROW_LINES * 3, cycle=0)
            return latency

        assert last_latency(ddr4_2400()) < last_latency(ddr3_1600())


class TestDemandPriority:
    def test_prefetch_burst_does_not_delay_demands(self):
        """Demand-priority scheduling: a burst of queued prefetches must
        not inflate a following demand's queue delay."""
        quiet = DRAM(ddr4_2400())
        demand_alone = quiet.access(line=10**6, cycle=0, is_prefetch=False)

        busy = DRAM(ddr4_2400())
        for i in range(32):
            busy.access(line=i * DRAM.ROW_LINES * 3, cycle=0, is_prefetch=True)
        demand_after_burst = busy.access(line=10**6, cycle=0, is_prefetch=False)
        assert demand_after_burst <= demand_alone + DRAM.BANK_BUSY_CYCLES

    def test_prefetches_queue_behind_demands(self):
        dram = DRAM(ddr4_2400())
        for i in range(32):
            dram.access(line=i * DRAM.ROW_LINES * 3, cycle=0, is_prefetch=False)
        prefetch = dram.access(line=10**6, cycle=0, is_prefetch=True)
        quiet = DRAM(ddr4_2400()).access(line=10**6, cycle=0, is_prefetch=True)
        assert prefetch > quiet

    def test_demands_queue_behind_demands(self):
        dram = DRAM(ddr4_2400())
        latencies = [
            dram.access(line=i * DRAM.ROW_LINES * 3, cycle=0, is_prefetch=False)
            for i in range(32)
        ]
        assert latencies[-1] > latencies[0]


class TestAccounting:
    def test_read_classification(self):
        dram = DRAM(ddr4_2400())
        dram.access(0, 0, is_prefetch=False)
        dram.access(64, 0, is_prefetch=True)
        assert dram.stats.reads == 1
        assert dram.stats.prefetch_reads == 1
        assert dram.total_reads == 2

    def test_mean_queue_delay_zero_when_empty(self):
        dram = DRAM(ddr4_2400())
        assert dram.stats.mean_queue_delay == 0.0


class TestFractionalQueueDelay:
    """Regression: sub-cycle channel-service delays must accumulate.

    At ``transfer_mtps=3200`` one line takes 24000/3200 = 7.5 cycles of
    channel time, so back-to-back demands queue by fractional amounts.
    The old per-access ``int()`` truncation dropped the 0.5s and
    systematically under-reported sustained contention.
    """

    @staticmethod
    def fractional_dram() -> DRAM:
        config = DRAMConfig(
            name="DDR4-3200",
            channels=1,
            ranks_per_channel=2,
            banks_per_rank=8,
            transfer_mtps=3200,
        )
        dram = DRAM(config)
        assert 1.0 / config.lines_per_cycle_per_channel == 7.5
        return dram

    def test_mean_queue_delay_pinned(self):
        dram = self.fractional_dram()
        # Four same-cycle demands on one channel, distinct banks/rows:
        # service starts at 0, 7.5, 15, 22.5 -> queue delays sum to 45.0.
        for i in range(4):
            dram.access(line=i * DRAM.ROW_LINES, cycle=0, is_prefetch=False)
        assert dram.stats.queue_delay_cycles == pytest.approx(45.0)
        assert dram.stats.mean_queue_delay == pytest.approx(11.25)
        # The integer view truncates once, at the reporting boundary —
        # not per access (which would have lost 2 of the 45 cycles).
        assert dram.stats.total_queue_delay == 45

    def test_returned_latency_unchanged_by_accounting_fix(self):
        # Per-access latency is still truncated to whole cycles exactly
        # as before; only the *accumulated* statistics changed.  Row
        # misses cost base_latency=160, so queue delays 0/7.5/15/22.5
        # yield int(160 + delay).
        dram = self.fractional_dram()
        latencies = [
            dram.access(line=i * DRAM.ROW_LINES, cycle=0) for i in range(4)
        ]
        assert latencies == [160, 167, 175, 182]
