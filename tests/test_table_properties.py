"""Property-based tests on Alecto's bookkeeping tables and batch dedupe."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import PrefetchCandidate
from repro.selection.alecto.sample_table import SampleTable
from repro.selection.alecto.sandbox_table import SandboxTable
from repro.selection.base import dedupe_by_line


@settings(max_examples=50)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["issue", "confirm", "demand"]),
            st.integers(0, 8),     # pc selector
            st.integers(0, 2),     # prefetcher index
        ),
        max_size=200,
    )
)
def test_sample_table_counters_bounded(operations):
    table = SampleTable(num_prefetchers=3, epoch_demands=10)
    for op, pc_sel, index in operations:
        pc = 0x400 + pc_sel * 0x100
        if op == "issue":
            table.note_issued(pc, index, count=3)
        elif op == "confirm":
            table.note_confirmed(pc, index)
        else:
            finished = table.note_demand(pc)
            if finished is not None:
                finished.reset_epoch()
    for _, entry in table._table.items():
        assert all(0 <= v <= 255 for v in entry.issued)
        assert all(0 <= v <= 255 for v in entry.confirmed)
        assert 0 <= entry.demand_counter < 10


@settings(max_examples=50)
@given(
    issues=st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 2)), max_size=150
    ),
    probes=st.lists(st.integers(0, 300), max_size=50),
)
def test_sandbox_confirm_at_most_once_per_issue(issues, probes):
    """Total confirmations can never exceed total recorded issues."""
    table = SandboxTable(num_prefetchers=3, num_entries=64, ways=8)
    pc = 0x400
    recorded = 0
    for line, index in issues:
        table.record_issue(line, pc, index)
        recorded += 1
    confirmed = 0
    for line in probes + probes:  # repeated probes must not double-count
        confirmed += len(table.confirm(line, pc))
    assert confirmed <= recorded


@settings(max_examples=60)
@given(
    lines=st.lists(st.integers(0, 40), min_size=0, max_size=60),
    prefetcher_picks=st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=60),
)
def test_dedupe_by_line_properties(lines, prefetcher_picks):
    n = min(len(lines), len(prefetcher_picks))
    batch = [
        PrefetchCandidate(line=lines[i], prefetcher=prefetcher_picks[i], pc=0x400)
        for i in range(n)
    ]
    kept = dedupe_by_line(batch, ["a", "b", "c"])
    kept_lines = [c.line for c in kept]
    # One candidate per line, no invented candidates, priority respected.
    assert len(kept_lines) == len(set(kept_lines))
    assert set(kept_lines) == set(lines[:n])
    by_line = {}
    for candidate in batch:
        by_line.setdefault(candidate.line, set()).add(candidate.prefetcher)
    rank = {"a": 0, "b": 1, "c": 2}
    for candidate in kept:
        best = min(by_line[candidate.line], key=rank.get)
        assert candidate.prefetcher == best
