"""Tests for the Table-I system configuration."""

import pytest

from repro.common.config import (
    SystemConfig,
    ddr3_1600,
    ddr4_2400,
    multicore_config,
)


class TestCacheConfig:
    def test_table1_l1_geometry(self):
        l1 = SystemConfig().l1d
        assert l1.size_bytes == 32 * 1024
        assert l1.ways == 8
        assert l1.num_lines == 512
        assert l1.num_sets == 64
        assert l1.latency == 4

    def test_table1_l2_geometry(self):
        l2 = SystemConfig().l2
        assert l2.size_bytes == 256 * 1024
        assert l2.latency == 15

    def test_llc_scales_with_cores(self):
        assert SystemConfig(cores=1).llc.size_bytes == 2 * 1024 * 1024
        assert SystemConfig(cores=8).llc.size_bytes == 16 * 1024 * 1024

    def test_llc_latency(self):
        assert SystemConfig().llc.latency == 35


class TestDRAMConfig:
    def test_ddr4_faster_than_ddr3(self):
        assert (
            ddr4_2400().lines_per_cycle_per_channel
            > ddr3_1600().lines_per_cycle_per_channel
        )

    def test_bandwidth_ratio(self):
        ratio = (
            ddr4_2400().lines_per_cycle_per_channel
            / ddr3_1600().lines_per_cycle_per_channel
        )
        assert ratio == pytest.approx(2400 / 1600)

    def test_channels_scale_total_bandwidth(self):
        assert ddr4_2400(channels=4).total_lines_per_cycle == pytest.approx(
            4 * ddr4_2400(channels=1).lines_per_cycle_per_channel
        )

    def test_single_channel_single_rank(self):
        assert ddr4_2400(channels=1).ranks_per_channel == 1

    def test_multi_channel_dual_rank(self):
        assert ddr4_2400(channels=4).ranks_per_channel == 2


class TestSystemConfig:
    def test_with_llc_size(self):
        config = SystemConfig().with_llc_size(512 * 1024)
        assert config.llc.size_bytes == 512 * 1024
        # Original untouched (frozen dataclass semantics).
        assert SystemConfig().llc.size_bytes == 2 * 1024 * 1024

    def test_with_dram(self):
        config = SystemConfig().with_dram(ddr3_1600())
        assert config.dram.name == "DDR3-1600"

    def test_multicore_config_channels(self):
        assert multicore_config(8).dram.channels == 4
        assert multicore_config(2).dram.channels == 1
        assert multicore_config(1).dram.channels == 1

    def test_multicore_config_cores(self):
        assert multicore_config(8).cores == 8

    def test_rob_and_widths(self):
        config = SystemConfig()
        assert config.rob_entries == 256
        assert config.issue_width == 6
        assert config.commit_width == 4
