"""Tests for the PrefetchLedger accounting."""

import pytest

from repro.memory.hierarchy import PrefetchLedger


class TestLedger:
    def test_issue_and_accuracy(self):
        ledger = PrefetchLedger()
        for _ in range(4):
            ledger.record_issue("stride")
        ledger.record_use("stride", timely=True)
        ledger.record_use("stride", timely=False)
        assert ledger.accuracy("stride") == pytest.approx(0.5)

    def test_overall_accuracy(self):
        ledger = PrefetchLedger()
        ledger.record_issue("a")
        ledger.record_issue("b")
        ledger.record_use("a", timely=True)
        assert ledger.accuracy() == pytest.approx(0.5)

    def test_accuracy_no_issues(self):
        assert PrefetchLedger().accuracy() == 0.0
        assert PrefetchLedger().accuracy("ghost") == 0.0

    def test_totals(self):
        ledger = PrefetchLedger()
        ledger.record_issue("a")
        ledger.record_issue("a")
        ledger.record_use("a", timely=True)
        ledger.record_use("a", timely=False)
        assert ledger.total_issued() == 2
        assert ledger.total_useful() == 2

    def test_eviction_and_drop_buckets(self):
        ledger = PrefetchLedger()
        ledger.record_eviction("a")
        ledger.record_drop("a")
        ledger.record_drop("a")
        assert ledger.evicted_unused["a"] == 1
        assert ledger.dropped["a"] == 2

    def test_timely_untimely_split(self):
        ledger = PrefetchLedger()
        ledger.record_use("a", timely=True)
        ledger.record_use("a", timely=True)
        ledger.record_use("a", timely=False)
        assert ledger.used_timely["a"] == 2
        assert ledger.used_untimely["a"] == 1
