"""Tests for the Sample Table (issued/confirmed counters, epochs, Dead Counter)."""

import pytest

from repro.selection.alecto.sample_table import SampleTable

PC = 0x400


def make_table(**kwargs):
    return SampleTable(num_prefetchers=3, **kwargs)


class TestCounters:
    def test_issue_and_confirm(self):
        table = make_table()
        table.note_issued(PC, 0, count=3)
        table.note_confirmed(PC, 0)
        entry = table.peek(PC)
        assert entry.issued[0] == 3
        assert entry.confirmed[0] == 1

    def test_counters_cap_at_255(self):
        table = make_table()
        table.note_issued(PC, 1, count=500)
        assert table.peek(PC).issued[1] == 255

    def test_accuracy(self):
        table = make_table()
        table.note_issued(PC, 0, count=10)
        for _ in range(8):
            table.note_confirmed(PC, 0)
        assert table.peek(PC).accuracy(0, min_issued=4) == pytest.approx(0.8)

    def test_accuracy_none_below_min_issued(self):
        table = make_table()
        table.note_issued(PC, 0, count=2)
        assert table.peek(PC).accuracy(0, min_issued=4) is None

    def test_accuracy_clamped_to_one(self):
        table = make_table()
        table.note_issued(PC, 0, count=4)
        for _ in range(10):
            table.note_confirmed(PC, 0)
        assert table.peek(PC).accuracy(0, min_issued=4) == 1.0


class TestEpochs:
    def test_epoch_fires_at_threshold(self):
        table = make_table(epoch_demands=5)
        for _ in range(4):
            assert table.note_demand(PC) is None
        assert table.note_demand(PC) is not None

    def test_reset_epoch_clears_counters_not_dead(self):
        table = make_table(epoch_demands=5)
        table.note_issued(PC, 0, count=3)
        entry = table.entry_for(PC)
        entry.dead_counter.increment(10)
        entry.reset_epoch()
        assert entry.issued[0] == 0
        assert entry.demand_counter == 0
        assert entry.dead_counter.value == 10

    def test_per_pc_epochs_independent(self):
        table = make_table(epoch_demands=3)
        table.note_demand(PC)
        table.note_demand(PC)
        assert table.note_demand(0x900) is None
        assert table.note_demand(PC) is not None


class TestDeadCounter:
    def test_fires_after_sustained_silence(self):
        table = make_table(dead_threshold=10)
        fired = [table.note_prediction_outcome(PC, produced_prefetch=False) for _ in range(10)]
        assert fired[-1]
        assert not any(fired[:-1])

    def test_resets_after_firing(self):
        table = make_table(dead_threshold=5)
        for _ in range(5):
            table.note_prediction_outcome(PC, produced_prefetch=False)
        assert table.peek(PC).dead_counter.value == 0

    def test_success_pays_down_bursts(self):
        # One produced prefetch absorbs DEAD_REWARD silent predictions, so
        # burst prefetchers (PMP) never look dead.
        table = make_table(dead_threshold=100)
        for _ in range(50):
            for _ in range(SampleTable.DEAD_REWARD):
                assert not table.note_prediction_outcome(PC, produced_prefetch=False)
            table.note_prediction_outcome(PC, produced_prefetch=True)
        assert table.peek(PC).dead_counter.value < 100


class TestStorage:
    def test_storage_bits_formula(self):
        # 64 x (1 + 9 + 16P + 7 + 8) = 1600 + 1024P (Table III).
        table = make_table()
        assert table.storage_bits == 1600 + 1024 * 3
