"""Tests for the Sandbox Table (recording, confirmation, filtering)."""

from repro.selection.alecto.sandbox_table import SandboxTable

PC = 0x400


def make_table(**kwargs):
    return SandboxTable(num_prefetchers=3, **kwargs)


class TestRecording:
    def test_record_and_confirm(self):
        table = make_table()
        table.record_issue(line=100, pc=PC, prefetcher_index=1)
        assert table.confirm(line=100, pc=PC) == [1]

    def test_confirmation_is_one_shot(self):
        table = make_table()
        table.record_issue(100, PC, 1)
        table.confirm(100, PC)
        assert table.confirm(100, PC) == []

    def test_multiple_prefetchers_confirmed_together(self):
        table = make_table()
        table.record_issue(100, PC, 0)
        table.record_issue(100, PC, 2)
        assert table.confirm(100, PC) == [0, 2]

    def test_wrong_pc_not_confirmed(self):
        table = make_table()
        table.record_issue(100, PC, 1)
        # A PC with a different fold must not confirm.
        other = PC ^ 0x1  # differs in the low tag bits
        assert table.confirm(100, other) == []

    def test_unknown_line_not_confirmed(self):
        assert make_table().confirm(line=5, pc=PC) == []


class TestFiltering:
    def test_duplicate_detected(self):
        table = make_table()
        table.record_issue(100, PC, 0)
        assert table.is_duplicate(100)
        assert table.duplicates_filtered == 1

    def test_fresh_line_not_duplicate(self):
        table = make_table()
        assert not table.is_duplicate(100)

    def test_contains(self):
        table = make_table()
        table.record_issue(100, PC, 0)
        assert 100 in table
        assert 101 not in table

    def test_capacity_eviction(self):
        table = make_table(num_entries=16, ways=2)
        for line in range(100):
            table.record_issue(line, PC, 0)
        live = sum(1 for line in range(100) if line in table)
        assert live <= 16


class TestStorage:
    def test_storage_bits_formula(self):
        # 512 x (6 + P) = 3072 + 512P (Table III).
        assert make_table().storage_bits == 3072 + 512 * 3

    def test_pc_tag_is_six_bits(self):
        assert 0 <= SandboxTable.pc_tag(0xDEADBEEF) < 64
