"""Integration tests: the paper's headline behaviours on small workloads.

These assert the *mechanisms*, not exact numbers: Alecto blocks junk
prefetchers per PC, reduces table misses and training occurrences versus
train-all allocation, and sustains higher prefetch accuracy.
"""

import pytest

from repro.prefetchers import make_composite
from repro.selection import AlectoSelection, IPCPSelection
from repro.selection.bandit import make_bandit6
from repro.sim import simulate
from repro.workloads.profiles import profile

MB = 1 << 20


def mixed_profile():
    """Stream + stride + spatial + noise: every prefetcher has a niche."""
    return profile("mixed", "test", True, 0.3, [
        (0.30, "stream", {"footprint": 32 * MB, "run_length": 700}),
        (0.25, "stride", {"stride": 448, "footprint": 32 * MB, "dwell": 4}),
        (0.25, "spatial", {
            "offsets": (0, 3, 4, 7, 11, 15), "footprint": 32 * MB,
            "sequential_regions": True,
        }),
        (0.20, "random", {"footprint": 2 * MB, "pc_count": 24}),
    ])


@pytest.fixture(scope="module")
def runs():
    trace = mixed_profile().generate(12000, seed=5)
    return {
        "baseline": simulate(trace, None),
        "ipcp": simulate(trace, IPCPSelection(make_composite())),
        "bandit6": simulate(trace, make_bandit6(make_composite())),
        "alecto": simulate(trace, AlectoSelection(make_composite())),
    }


class TestFig1Mechanism:
    def test_alecto_reduces_table_misses(self, runs):
        assert runs["alecto"].table_misses < runs["ipcp"].table_misses

    def test_alecto_reduces_training_occurrences(self, runs):
        alecto = sum(runs["alecto"].training_occurrences.values())
        ipcp = sum(runs["ipcp"].training_occurrences.values())
        assert alecto < 0.8 * ipcp


class TestFig10Mechanism:
    def test_alecto_accuracy_leads(self, runs):
        assert runs["alecto"].metrics.accuracy > runs["ipcp"].metrics.accuracy

    def test_alecto_coverage_not_sacrificed(self, runs):
        assert runs["alecto"].metrics.coverage >= 0.8 * runs["ipcp"].metrics.coverage

    def test_everyone_speeds_up_mixed_workload(self, runs):
        base = runs["baseline"].ipc
        assert runs["alecto"].ipc > base
        assert runs["bandit6"].ipc > base


class TestStateConvergence:
    def test_junk_prefetchers_blocked_per_pc(self):
        trace = mixed_profile().generate(12000, seed=5)
        selector = AlectoSelection(make_composite())
        simulate(trace, selector)
        blocked_states = 0
        aggressive_states = 0
        for _, entry in selector.allocation_table._table.items():
            for state in entry.states:
                blocked_states += state.is_blocked
                aggressive_states += state.is_aggressive
        assert aggressive_states > 0
        assert blocked_states > 0

    def test_epochs_completed(self):
        trace = mixed_profile().generate(12000, seed=5)
        selector = AlectoSelection(make_composite())
        simulate(trace, selector)
        assert selector.epochs_completed > 10


class TestEnergyMechanism:
    def test_alecto_prefetcher_energy_below_bandit(self, runs):
        assert (
            runs["alecto"].energy.prefetcher_tables_pj
            < runs["bandit6"].energy.prefetcher_tables_pj
        )
