"""Tests for the workload/suite registries and scenario pattern families."""

import random

import pytest

from repro.registry import (
    WORKLOADS,
    build_workload,
    get_suite,
    list_suites,
    list_workloads,
)
from repro.workloads import SUITE_PRECEDENCE, get_profile
from repro.workloads.patterns import (
    LINE,
    DriftingStridePattern,
    GCBurstPattern,
    HashJoinPattern,
    PATTERN_KINDS,
    PhasedPattern,
    ProducerConsumerPattern,
    make_pattern,
)
from repro.workloads.scenarios import SCENARIO_PROFILES


class TestWorkloadRegistry:
    def test_every_suite_member_is_registered(self):
        for suite_name in SUITE_PRECEDENCE:
            for name in get_suite(suite_name):
                assert f"{suite_name}/{name}" in WORKLOADS

    def test_flat_name_precedence(self):
        # spec06 precedes temporal, so the flat name resolves there.
        assert build_workload("mcf").suite == "spec06"
        assert build_workload("temporal/mcf").suite == "temporal"

    def test_suites_registered(self):
        assert {"spec06", "spec17", "parsec", "ligra", "temporal",
                "scenarios"} <= set(list_suites())

    def test_get_profile_goes_through_registry(self):
        assert get_profile("phase_flip") is SCENARIO_PROFILES["phase_flip"]

    def test_factory_spec(self):
        profile = build_workload("phased:period=777,regimes=3")
        assert profile.suite == "scenarios"
        assert "period=777" in profile.name

    def test_factory_bad_parameter(self):
        # Unknown factory params are a usage error naming the valid
        # params, not a bare TypeError from the call itself.
        with pytest.raises(ValueError, match="period, regimes"):
            build_workload("phased:bogus=1")

    def test_factory_invalid_value(self):
        with pytest.raises(ValueError, match="regimes"):
            build_workload("phased:regimes=99")

    def test_static_workload_rejects_parameters(self):
        with pytest.raises(ValueError, match="static profile"):
            build_workload("mcf:period=5")

    def test_did_you_mean_error(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("definitely_not_registered")
        with pytest.raises(ValueError, match="did you mean"):
            build_workload("mfc")

    def test_user_registration_wins_and_lists(self):
        from repro.workloads.profiles import profile

        custom = profile("zz_custom", "test", True, 0.3, [
            (1.0, "stream", {"footprint": 1 << 20}),
        ])
        WORKLOADS.add("zz_custom", custom, suite="test")
        try:
            assert build_workload("zz_custom") is custom
            assert "zz_custom" in list_workloads()
        finally:
            WORKLOADS._entries.pop("zz_custom", None)
            WORKLOADS._metadata.pop("zz_custom", None)


class TestScenarioProfiles:
    @pytest.mark.parametrize("name", sorted(SCENARIO_PROFILES))
    def test_deterministic_under_fixed_seed(self, name):
        prof = SCENARIO_PROFILES[name]
        assert prof.generate(400, seed=5) == prof.generate(400, seed=5)

    @pytest.mark.parametrize("name", sorted(SCENARIO_PROFILES))
    def test_stream_generate_parity(self, name):
        prof = SCENARIO_PROFILES[name]
        assert list(prof.stream(400, seed=2)) == prof.generate(400, seed=2)

    def test_seeds_differ(self):
        prof = SCENARIO_PROFILES["phase_flip"]
        assert prof.generate(400, seed=1) != prof.generate(400, seed=2)

    def test_factory_profiles_run_end_to_end(self):
        from repro.sim import simulate

        prof = build_workload("drifting:stride=128,drift=32")
        result = simulate(prof.generate(600, seed=1), None, name=prof.name)
        assert result.ipc > 0


class TestPhasedPattern:
    def test_switches_exactly_at_period(self):
        pattern = PhasedPattern(0x400, random.Random(1), period=10)
        phases = []
        for _ in range(40):
            pattern.next_address()
            phases.append(pattern.phase)
        assert phases[:10] == [0] * 10
        assert phases[10:20] == [1] * 10
        assert phases[20:30] == [0] * 10  # wraps back to the first phase

    def test_children_have_distinct_pcs_and_windows(self):
        pattern = PhasedPattern(0x400, random.Random(1), period=5)
        seen = {}
        for _ in range(20):
            address, _ = pattern.next_address()
            seen.setdefault(pattern.phase, set()).add(
                address // PhasedPattern.CHILD_WINDOW
            )
        assert seen[0].isdisjoint(seen[1])

    def test_needs_two_phases(self):
        with pytest.raises(ValueError):
            PhasedPattern(0x400, random.Random(1),
                          phases=(("stream", {}),), period=10)

    def test_profile_level_boundaries_are_exact(self):
        # The weight-1.0 phased profile flips regime at exact multiples
        # of period in the generated trace (what scenario_phase relies
        # on): stream-phase records are never dependent, pointer-chase
        # records always are.
        prof = build_workload("phased:period=50,regimes=2")
        trace = prof.generate(200, seed=3)
        assert not any(r.dependent for r in trace[:50])
        assert all(r.dependent for r in trace[50:100])
        assert not any(r.dependent for r in trace[100:150])


class TestDriftingStride:
    def test_stride_constant_within_drift_period(self):
        pattern = DriftingStridePattern(
            0x400, random.Random(1), stride=128, drift=64, drift_period=8,
            footprint=1 << 26,
        )
        addrs = [pattern.next_address()[0] for _ in range(8)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {128}

    def test_stride_drifts_and_reflects(self):
        pattern = DriftingStridePattern(
            0x400, random.Random(1), stride=128, drift=64, drift_period=4,
            min_stride=64, max_stride=256, footprint=1 << 26,
        )
        strides = []
        for _ in range(40):
            pattern.next_address()
            strides.append(pattern.stride)
        assert {128, 192, 256} <= set(strides)
        assert max(strides) <= 256 and min(strides) >= 64
        assert any(a > b for a, b in zip(strides, strides[1:]))  # reflected

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftingStridePattern(0x400, random.Random(1), stride=32,
                                  min_stride=64)

    def test_oversized_drift_clamps_to_bounds(self):
        # |drift| wider than the [min, max] band overshoots even after
        # reflecting; the stride must still stay inside the band.
        pattern = DriftingStridePattern(
            0x400, random.Random(1), stride=256, drift=4096, drift_period=2,
            min_stride=64, max_stride=2048, footprint=1 << 26,
        )
        strides = set()
        for _ in range(40):
            pattern.next_address()
            strides.add(pattern.stride)
        assert all(64 <= s <= 2048 for s in strides)


class TestHashJoin:
    def test_gathers_are_dependent_and_in_bucket_window(self):
        pattern = HashJoinPattern(0x400, random.Random(1), matches=1)
        kinds = [pattern.next_address() for _ in range(40)]
        dependents = [d for _, d in kinds]
        # Alternating probe (independent) / gather (dependent).
        assert dependents[0::2] == [False] * 20
        assert dependents[1::2] == [True] * 20

    def test_probe_side_is_sequential(self):
        pattern = HashJoinPattern(
            0x400, random.Random(1), matches=1, row_bytes=32
        )
        probes = [pattern.next_address()[0] for _ in range(20)][0::2]
        deltas = {b - a for a, b in zip(probes, probes[1:])}
        assert deltas == {32}

    def test_validation(self):
        with pytest.raises(ValueError):
            HashJoinPattern(0x400, random.Random(1), buckets=1)


class TestProducerConsumer:
    def test_consumer_rereads_produced_lines(self):
        pattern = ProducerConsumerPattern(
            0x400, random.Random(1), ring_bytes=1 << 20, lag=64, burst=4
        )
        produced, consumed = set(), set()
        for _ in range(4096):
            address, _ = pattern.next_address()
            line = address // LINE
            if pattern.pc == pattern._producer_pc:
                produced.add(line)
            else:
                consumed.add(line)
        # Apart from the pre-existing window behind the initial head,
        # every consumed line was produced earlier in the run.
        assert len(consumed - produced) <= 64
        assert len(consumed & produced) > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ProducerConsumerPattern(0x400, random.Random(1),
                                    ring_bytes=1 << 20, lag=0)


class TestGCBurst:
    def test_bursts_are_periodic_and_dependent(self):
        pattern = GCBurstPattern(
            0x400, random.Random(1), gc_every=100, gc_length=20
        )
        flags = []
        for _ in range(300):
            _, dependent = pattern.next_address()
            flags.append(dependent)
        # Allocation prefix, then a 20-access dependent burst.
        assert not any(flags[:100])
        assert all(flags[100:120])
        assert not any(flags[120:220])

    def test_allocation_is_sequential(self):
        pattern = GCBurstPattern(0x400, random.Random(1), gc_every=1000)
        addrs = [pattern.next_address()[0] for _ in range(50)]
        assert [b - a for a, b in zip(addrs, addrs[1:])] == [LINE] * 49


class TestNewKindsInRegistry:
    def test_all_new_kinds_registered_and_default_constructible(self):
        for kind in ("phased", "drifting_stride", "hash_join",
                     "producer_consumer", "gc_burst"):
            assert kind in PATTERN_KINDS
            pattern = make_pattern(kind, 0x400, random.Random(1))
            address, dependent = pattern.next_address()
            assert address >= 0
