"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro import faults
from repro.faults import (
    FAULT_SITES,
    FaultError,
    FaultIOError,
    FaultPlan,
    FaultSpec,
    active_plan,
    parse_fault_plan,
)


class TestGrammar:
    def test_single_clause_defaults(self):
        plan = parse_fault_plan("cell_exception")
        spec = plan.specs["cell_exception"]
        assert spec.probability == 1.0
        assert spec.seed == 0
        assert spec.attempts is None

    def test_full_clause(self):
        plan = parse_fault_plan("worker_crash:p=0.2:seed=7:attempts=2")
        spec = plan.specs["worker_crash"]
        assert spec.probability == 0.2
        assert spec.seed == 7
        assert spec.attempts == 2

    def test_multiple_clauses(self):
        plan = parse_fault_plan(
            "worker_crash:p=0.2:seed=1,cell_exception:p=0.1:seed=2"
        )
        assert set(plan.specs) == {"worker_crash", "cell_exception"}

    def test_params_in_any_order(self):
        a = parse_fault_plan("cell_exception:seed=3:p=0.5")
        b = parse_fault_plan("cell_exception:p=0.5:seed=3")
        assert a == b

    def test_stall_seconds(self):
        plan = parse_fault_plan("cell_stall:s=0.25")
        assert plan.specs["cell_stall"].stall_seconds == 0.25

    def test_round_trip(self):
        spec = "worker_crash:p=0.2:seed=1,cell_stall:p=1:seed=0:s=2.5"
        plan = parse_fault_plan(spec)
        assert parse_fault_plan(plan.spec_string()) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            "no_such_site",
            "cell_exception:p=1.5",
            "cell_exception:p=-0.1",
            "cell_exception:q=1",
            "cell_exception:p=abc",
            "cell_exception:attempts=0",
            "cell_exception:p=0.5:p=0.5",
            "cell_exception,cell_exception",
            "worker_crash:s=5",  # s= is cell_stall-only
            "cell_stall:s=-1",
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)

    def test_empty_spec_is_empty_plan(self):
        assert parse_fault_plan("").specs == {}


class TestDeterminism:
    def test_decisions_are_pure(self):
        plan = parse_fault_plan("cell_exception:p=0.5:seed=9")
        first = [
            plan.should_fire("cell_exception", f"cell/{i}", 0)
            for i in range(64)
        ]
        second = [
            plan.should_fire("cell_exception", f"cell/{i}", 0)
            for i in range(64)
        ]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 actually splits

    def test_seed_changes_decisions(self):
        a = parse_fault_plan("cell_exception:p=0.5:seed=1")
        b = parse_fault_plan("cell_exception:p=0.5:seed=2")
        decisions_a = [
            a.should_fire("cell_exception", f"t{i}", 0) for i in range(64)
        ]
        decisions_b = [
            b.should_fire("cell_exception", f"t{i}", 0) for i in range(64)
        ]
        assert decisions_a != decisions_b

    def test_attempt_rerolls(self):
        plan = parse_fault_plan("cell_exception:p=0.5:seed=4")
        token = "cell/gcc/alecto"
        draws = [
            plan.should_fire("cell_exception", token, attempt)
            for attempt in range(64)
        ]
        assert any(draws) and not all(draws)

    def test_attempts_gate(self):
        plan = parse_fault_plan("cell_exception:p=1:attempts=1")
        assert plan.should_fire("cell_exception", "t", 0)
        assert not plan.should_fire("cell_exception", "t", 1)

    def test_p_zero_never_fires(self):
        plan = parse_fault_plan("cell_exception:p=0")
        assert not any(
            plan.should_fire("cell_exception", f"t{i}", 0) for i in range(32)
        )


class TestFiring:
    def test_cell_exception_raises_with_site(self):
        plan = parse_fault_plan("cell_exception:p=1")
        with pytest.raises(FaultError) as excinfo:
            plan.fire("cell_exception", "cell/gcc/alecto", 0)
        assert excinfo.value.site == "cell_exception"
        assert "cell/gcc/alecto" in str(excinfo.value)

    def test_io_sites_raise_oserror(self):
        plan = parse_fault_plan("store_put_io:p=1,trace_read_io:p=1")
        with pytest.raises(FaultIOError):
            plan.fire("store_put_io", "digest", 0)
        with pytest.raises(OSError):
            plan.fire("trace_read_io", "file.trace.v2", 0)

    def test_worker_crash_noop_outside_pool_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_WORKER", raising=False)
        plan = parse_fault_plan("worker_crash:p=1")
        plan.fire("worker_crash", "experiment/fig01", 0)  # must not die

    def test_cell_stall_sleeps(self):
        import time

        plan = parse_fault_plan("cell_stall:p=1:s=0.05")
        start = time.monotonic()
        plan.fire("cell_stall", "cell/x/y", 0)
        assert time.monotonic() - start >= 0.05

    def test_unknown_site_rejected(self):
        plan = FaultPlan({"cell_exception": FaultSpec("cell_exception")})
        with pytest.raises(ValueError):
            plan.fire("nonsense", "t", 0)

    def test_disarmed_site_is_noop(self):
        plan = parse_fault_plan("cell_exception:p=1")
        plan.fire("store_put_io", "t", 0)  # no clause for this site


class TestAmbientPlan:
    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert active_plan() is None
        faults.fire("cell_exception", "t")  # no-op without a plan

    def test_env_compiles_and_caches(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cell_exception:p=1:seed=3")
        plan = active_plan()
        assert plan is not None
        assert active_plan() is plan  # same env value → cached object
        monkeypatch.setenv(faults.FAULTS_ENV, "cell_exception:p=1:seed=4")
        assert active_plan() is not plan  # env change recompiles

    def test_module_fire_uses_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cell_exception:p=1")
        with pytest.raises(FaultError):
            faults.fire("cell_exception", "anything", 0)

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cell_exception:p=oops")
        with pytest.raises(ValueError):
            active_plan()

    def test_attempt_context(self):
        assert faults.current_attempt() == 0
        with faults.attempt_context(3):
            assert faults.current_attempt() == 3
            with faults.attempt_context(5):
                assert faults.current_attempt() == 5
            assert faults.current_attempt() == 3
        assert faults.current_attempt() == 0

    def test_all_sites_named(self):
        assert FAULT_SITES == (
            "worker_crash",
            "cell_exception",
            "cell_stall",
            "store_put_io",
            "store_get_io",
            "store_lease_io",
            "trace_read_io",
            "job_dispatch_io",
        )
