"""Smoke tests: the example scripts compile and expose main()."""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses(path):
    tree = ast.parse(path.read_text())
    function_names = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "compare_selectors",
            "temporal_prefetching", "custom_prefetcher"} <= names
