"""Tests for simulate_phases and the two scenario experiments."""

import json

import pytest

from repro.cli import main
from repro.experiments.common import make_selector
from repro.registry import build_workload, get_experiment
from repro.sim import simulate, simulate_phases, simulation_count


class TestSimulatePhases:
    def test_final_result_identical_to_simulate(self):
        profile = build_workload("phased:period=200")
        trace = profile.generate(800, seed=1)
        whole = simulate(trace, make_selector("ipcp"), name="x")
        phased, phases = simulate_phases(
            trace, make_selector("ipcp"), name="x", phase_length=200
        )
        assert phased.ipc == whole.ipc
        assert phased.core.cycles == whole.core.cycles
        assert phased.metrics.issued == whole.metrics.issued
        assert len(phases) == 4
        assert sum(p["accesses"] for p in phases) == 800

    def test_short_final_phase(self):
        profile = build_workload("phased:period=300")
        _, phases = simulate_phases(
            profile.generate(700, seed=1), None, phase_length=300
        )
        assert [p["accesses"] for p in phases] == [300, 300, 100]

    def test_baseline_rows_have_no_selector_columns(self):
        profile = build_workload("phased:period=200")
        _, phases = simulate_phases(
            profile.generate(400, seed=1), None, phase_length=200
        )
        assert all(set(p) == {"accesses", "ipc"} for p in phases)

    def test_counts_as_one_simulation(self):
        profile = build_workload("phased:period=100")
        before = simulation_count()
        simulate_phases(profile.generate(200, seed=1), None, phase_length=100)
        assert simulation_count() == before + 1

    def test_rejects_bad_phase_length(self):
        with pytest.raises(ValueError):
            simulate_phases([], None, phase_length=0)


class TestScenarioExperiments:
    def test_scenario_phase_deterministic(self):
        experiment = get_experiment("scenario_phase")
        one = experiment.run(**experiment.fast_params)
        two = experiment.run(**experiment.fast_params)
        assert one.rows == two.rows

    def test_scenario_external_deterministic(self):
        experiment = get_experiment("scenario_external")
        one = experiment.run(**experiment.fast_params)
        two = experiment.run(**experiment.fast_params)
        assert one.rows == two.rows
        assert set(one.rows) == {
            "baseline", "ipcp", "dol", "bandit3", "bandit6", "alecto",
        }

    def test_scenario_external_accepts_external_v1_trace(self, tmp_path):
        from repro.cpu.tracefile import write_trace
        from repro.workloads import get_profile

        path = str(tmp_path / "ext.trace.gz")
        write_trace(
            path, get_profile("gcc").stream(600, seed=2),
            meta={"benchmark": "gcc"},
        )
        rows = get_experiment("scenario_external").run(
            trace=path, accesses=600
        ).rows
        assert rows["baseline"]["ipc"] > 0

    def test_suite_cold_then_warm_byte_identical(self, tmp_path, capsys):
        """`repro suite scenario_phase scenario_external` populates the
        store cold and replays warm with zero simulations and
        byte-identical rows (the PR's acceptance criterion)."""
        store = str(tmp_path / "store")
        cold_json = str(tmp_path / "cold.json")
        warm_json = str(tmp_path / "warm.json")
        args = ["suite", "scenario_phase", "scenario_external",
                "--fast", "-q", "--store", store]
        assert main(args + ["--json", cold_json]) == 0
        cold_out = capsys.readouterr().out
        assert "2 experiment(s) cached" not in cold_out
        assert main(args + ["--json", warm_json]) == 0
        warm_out = capsys.readouterr().out
        assert "2 experiment(s) cached, 0 computed" in warm_out
        assert "0 simulation(s) executed" in warm_out
        cold = json.load(open(cold_json))["data"]["results"]
        warm = json.load(open(warm_json))["data"]["results"]
        for c, w in zip(cold, warm):
            assert json.dumps(c["rows"], sort_keys=True) == json.dumps(
                w["rows"], sort_keys=True
            ), c["name"]
