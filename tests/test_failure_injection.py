"""Failure-injection and edge-case tests across the stack.

These exercise the degenerate conditions a downstream user will hit:
empty traces, zero-degree selectors, hostile access patterns, pathological
table pressure, and mid-run pattern changes (the Dead Counter's reason to
exist).
"""

from repro.common.types import AccessType
from repro.cpu.trace import TraceRecord
from repro.prefetchers import make_composite
from repro.selection import AlectoConfig, AlectoSelection, IPCPSelection
from repro.sim import simulate
from repro.workloads.profiles import profile

MB = 1 << 20


class TestDegenerateInputs:
    def test_empty_trace(self):
        result = simulate([], AlectoSelection(make_composite()))
        assert result.core.instructions == 0
        assert result.ipc == 0.0

    def test_single_record_trace(self):
        trace = [TraceRecord(pc=0x400, address=64)]
        result = simulate(trace, AlectoSelection(make_composite()))
        assert result.core.instructions == trace[0].instructions

    def test_all_stores_trace(self):
        trace = [
            TraceRecord(pc=0x400, address=i * 64, access_type=AccessType.STORE)
            for i in range(200)
        ]
        result = simulate(trace, AlectoSelection(make_composite()))
        assert result.core.stores == 200
        assert result.ipc > 0

    def test_same_address_forever(self):
        trace = [TraceRecord(pc=0x400, address=64) for _ in range(500)]
        result = simulate(trace, AlectoSelection(make_composite()))
        assert result.l1_hit_rate > 0.99

    def test_zero_degree_everywhere(self):
        config = AlectoConfig(conservative_degree=0, fixed_degree=0)
        trace = [TraceRecord(pc=0x400, address=i * 64) for i in range(300)]
        result = simulate(trace, AlectoSelection(make_composite(), config))
        assert result.metrics.issued == 0


class TestHostilePatterns:
    def test_pattern_change_mid_run_recovers(self):
        """A PC that flips from stream to random must not keep its
        aggressive state forever (Dead Counter, Section IV-C)."""
        import random

        rng = random.Random(7)
        stream_part = [
            TraceRecord(pc=0x400, address=i * 64, nonmem_before=2)
            for i in range(4000)
        ]
        random_part = [
            TraceRecord(
                pc=0x400, address=rng.randrange(1 << 26) * 64, nonmem_before=2
            )
            for _ in range(4000)
        ]
        selector = AlectoSelection(make_composite())
        simulate(stream_part + random_part, selector)
        entry = selector.allocation_table.peek(0x400)
        # After the random phase no prefetcher should still be deep-IA
        # with the stream-era confidence.
        assert not any(
            state.is_aggressive and state.level >= 4 for state in entry.states
        )

    def test_massive_pc_churn(self):
        """Thousands of distinct PCs must not crash or grow unbounded."""
        trace = [
            TraceRecord(pc=0x400000 + i * 4, address=(i * 97) % (1 << 20) * 64)
            for i in range(5000)
        ]
        selector = AlectoSelection(make_composite())
        result = simulate(trace, selector)
        assert len(selector.allocation_table._table) <= 64

    def test_adversarial_alias_pressure(self):
        """PCs that alias into the same allocation set still make progress."""
        trace = []
        for i in range(3000):
            pc = 0x400000 + (i % 8) * 64 * 0x1000  # same low index bits
            trace.append(TraceRecord(pc=pc, address=(i * 7) * 64))
        result = simulate(trace, AlectoSelection(make_composite()))
        assert result.ipc > 0


class TestSelectorRobustness:
    def test_ipcp_with_one_prefetcher(self):
        from repro.prefetchers.stride import StridePrefetcher

        trace = [TraceRecord(pc=0x400, address=i * 448) for i in range(500)]
        result = simulate(trace, IPCPSelection([StridePrefetcher()]))
        assert result.metrics.issued > 0

    def test_results_independent_of_prior_runs(self):
        prof = profile("iso", "t", True, 0.3, [
            (1.0, "stream", {"footprint": 8 * MB, "run_length": 300}),
        ])
        trace = prof.generate(2000, seed=1)
        first = simulate(trace, AlectoSelection(make_composite()))
        # Interleave an unrelated run.
        other = prof.generate(2000, seed=9)
        simulate(other, AlectoSelection(make_composite()))
        second = simulate(trace, AlectoSelection(make_composite()))
        assert first.ipc == second.ipc
