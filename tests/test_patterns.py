"""Tests for the workload pattern generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    LINE,
    REGION,
    DeltaSequencePattern,
    PATTERN_KINDS,
    PointerChasePattern,
    RandomPattern,
    SpatialPattern,
    StreamPattern,
    StridePattern,
    TemporalPattern,
    make_pattern,
)


def addresses(pattern, n):
    return [pattern.next_address()[0] for _ in range(n)]


class TestStream:
    def test_lines_ascend_within_run(self):
        pattern = StreamPattern(0x400, random.Random(1), run_length=1000)
        lines = [a // LINE for a in addresses(pattern, 64)]
        assert all(b - a in (0, 1) for a, b in zip(lines, lines[1:]))

    def test_element_granularity(self):
        pattern = StreamPattern(0x400, random.Random(1), element_bytes=8)
        addrs = addresses(pattern, 16)
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        assert all(d == 8 for d in deltas[:7])

    def test_eight_accesses_per_line(self):
        pattern = StreamPattern(0x400, random.Random(1), element_bytes=8)
        lines = [a // LINE for a in addresses(pattern, 80)]
        # Each line appears 8 times consecutively.
        assert lines.count(lines[0]) >= 8 or lines.count(lines[8]) == 8

    def test_invalid_element_bytes(self):
        with pytest.raises(ValueError):
            StreamPattern(0x400, random.Random(1), element_bytes=0)

    def test_not_dependent(self):
        pattern = StreamPattern(0x400, random.Random(1))
        assert pattern.next_address()[1] is False


class TestStride:
    def test_stride_between_records(self):
        pattern = StridePattern(
            0x400, random.Random(1), stride=448, dwell=1, footprint=1 << 24
        )
        addrs = addresses(pattern, 16)
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert 448 in deltas

    def test_dwell_stays_in_line(self):
        pattern = StridePattern(
            0x400, random.Random(1), stride=448, dwell=4, footprint=1 << 24
        )
        lines = [a // LINE for a in addresses(pattern, 64)]
        # Each record's 4 dwell accesses share a line (strides are
        # line-multiples and positions are stride-aligned).
        for i in range(0, 32, 4):
            assert len(set(lines[i : i + 4])) == 1

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            StridePattern(0x400, random.Random(1), stride=0)

    def test_invalid_dwell_rejected(self):
        with pytest.raises(ValueError):
            StridePattern(0x400, random.Random(1), dwell=0)


class TestDeltaSequence:
    def test_repeating_deltas(self):
        pattern = DeltaSequencePattern(
            0x400, random.Random(1), deltas=(1, 1, 1, 4), footprint=1 << 30
        )
        lines = [a // LINE for a in addresses(pattern, 17)]
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        assert deltas[:8] == [1, 1, 1, 4, 1, 1, 1, 4]

    def test_empty_deltas_rejected(self):
        with pytest.raises(ValueError):
            DeltaSequencePattern(0x400, random.Random(1), deltas=())


class TestSpatial:
    def test_offsets_replayed_per_region(self):
        offsets = (0, 3, 7)
        pattern = SpatialPattern(
            0x400, random.Random(1), offsets=offsets, dwell=1, footprint=1 << 24
        )
        addrs = addresses(pattern, 9)
        for chunk_start in range(0, 9, 3):
            chunk = addrs[chunk_start : chunk_start + 3]
            base = chunk[0] - (chunk[0] % REGION)
            relative = tuple((a - base) // LINE for a in chunk)
            assert relative == offsets

    def test_sequential_regions(self):
        pattern = SpatialPattern(
            0x400,
            random.Random(1),
            offsets=(0,),
            dwell=1,
            sequential_regions=True,
            footprint=1 << 24,
        )
        regions = [a // REGION for a in addresses(pattern, 5)]
        deltas = [b - a for a, b in zip(regions, regions[1:])]
        assert all(d == 1 for d in deltas)

    def test_dwell_within_offset_line(self):
        pattern = SpatialPattern(
            0x400, random.Random(1), offsets=(0, 5), dwell=4, footprint=1 << 24
        )
        lines = [a // LINE for a in addresses(pattern, 8)]
        assert len(set(lines[:4])) == 1
        assert len(set(lines[4:8])) == 1


class TestTemporal:
    def test_sequence_recurs_exactly(self):
        pattern = TemporalPattern(
            0x400, random.Random(1), sequence_length=50, dwell=1
        )
        first_lap = addresses(pattern, 50)
        second_lap = addresses(pattern, 50)
        assert first_lap == second_lap

    def test_noise_breaks_recurrence(self):
        pattern = TemporalPattern(
            0x400, random.Random(1), sequence_length=50, dwell=1, noise=1.0
        )
        first = addresses(pattern, 50)
        second = addresses(pattern, 50)
        assert first != second

    def test_invalid_sequence_length(self):
        with pytest.raises(ValueError):
            TemporalPattern(0x400, random.Random(1), sequence_length=0)


class TestPointerChase:
    def test_walk_is_dependent(self):
        pattern = PointerChasePattern(0x400, random.Random(1), nodes=16)
        assert pattern.next_address()[1] is True

    def test_walk_visits_all_nodes(self):
        pattern = PointerChasePattern(0x400, random.Random(1), nodes=32)
        visited = {a for a in addresses(pattern, 32)}
        assert len(visited) == 32

    def test_walk_is_a_cycle(self):
        pattern = PointerChasePattern(0x400, random.Random(1), nodes=16)
        lap1 = addresses(pattern, 16)
        lap2 = addresses(pattern, 16)
        assert lap1 == lap2

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            PointerChasePattern(0x400, random.Random(1), nodes=1)


class TestRandom:
    def test_addresses_line_aligned(self):
        pattern = RandomPattern(0x400, random.Random(1), footprint=1 << 20)
        assert all(a % LINE == 0 for a in addresses(pattern, 50))

    def test_pc_rotation_stays_in_reserved_range(self):
        pattern = RandomPattern(0x400000, random.Random(1), pc_count=16)
        pcs = set()
        for _ in range(200):
            pattern.next_address()
            pcs.add(pattern.pc)
        assert all(0x400000 <= pc < 0x400000 + 16 * 4 for pc in pcs)
        assert len(pcs) > 4


class TestRegistry:
    def test_all_kinds_constructible(self):
        for kind in PATTERN_KINDS:
            pattern = make_pattern(kind, 0x400, random.Random(1))
            address, dependent = pattern.next_address()
            assert address >= 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_pattern("zigzag", 0x400, random.Random(1))


@settings(max_examples=25)
@given(seed=st.integers(0, 1000), kind=st.sampled_from(sorted(PATTERN_KINDS)))
def test_patterns_deterministic_per_seed(seed, kind):
    a = make_pattern(kind, 0x400, random.Random(seed))
    b = make_pattern(kind, 0x400, random.Random(seed))
    assert [a.next_address() for _ in range(30)] == [
        b.next_address() for _ in range(30)
    ]
