"""Edge-case tests for simulation results and shared-resource wiring."""

import pytest

from repro.common.config import SystemConfig, multicore_config
from repro.cpu.trace import TraceRecord
from repro.prefetchers import make_composite
from repro.selection import AlectoSelection
from repro.sim import simulate, simulate_multicore
from repro.sim.simulator import MulticoreResult


def short_trace(pc=0x400, n=50):
    return [TraceRecord(pc=pc, address=i * 64) for i in range(n)]


class TestSimulationResult:
    def test_result_fields_populated(self):
        result = simulate(short_trace(), AlectoSelection(make_composite()))
        assert result.selector_name == "alecto"
        assert result.selector_storage_bits > 0
        assert result.l1_hit_rate >= 0.0
        assert result.table_lookups >= result.table_misses

    def test_baseline_has_no_prefetch_state(self):
        result = simulate(short_trace(), None)
        assert result.training_occurrences == {}
        assert result.issued_by_prefetcher == {}
        assert result.metrics.issued == 0

    def test_name_propagates(self):
        result = simulate(short_trace(), None, name="tagged")
        assert result.name == "tagged"


class TestMulticoreEdges:
    def test_single_core_multicore_equivalence(self):
        """A 1-core multicore run must match the single-core simulator."""
        trace = short_trace(n=300)
        single = simulate(trace, None, config=SystemConfig(cores=1))
        multi = simulate_multicore(
            [trace], lambda c: None, config=SystemConfig(cores=1)
        )
        assert multi.cores[0].ipc == pytest.approx(single.ipc)

    def test_uneven_trace_lengths(self):
        traces = [short_trace(n=10), short_trace(pc=0x500, n=200)]
        result = simulate_multicore(
            traces, lambda c: None, config=multicore_config(2)
        )
        assert result.cores[0].core.instructions < result.cores[1].core.instructions

    def test_weighted_speedup_empty(self):
        empty = MulticoreResult(cores=[])
        assert empty.weighted_speedup(empty) == 0.0

    def test_selector_factory_receives_core_ids(self):
        seen = []

        def factory(core_id):
            seen.append(core_id)
            return None

        simulate_multicore(
            [short_trace(n=5), short_trace(n=5)],
            factory,
            config=multicore_config(2),
        )
        assert seen == [0, 1]
