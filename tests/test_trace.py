"""Tests for trace records and interleaving."""

from repro.common.types import AccessType
from repro.cpu.trace import TraceRecord, interleave_traces


class TestTraceRecord:
    def test_instructions_counts_self(self):
        record = TraceRecord(pc=1, address=2, nonmem_before=5)
        assert record.instructions == 6

    def test_defaults(self):
        record = TraceRecord(pc=1, address=2)
        assert record.access_type is AccessType.LOAD
        assert not record.dependent


class TestInterleave:
    def test_round_robin_order(self):
        a = [TraceRecord(pc=0, address=i) for i in range(2)]
        b = [TraceRecord(pc=1, address=i) for i in range(2)]
        order = [(core, r.pc) for core, r in interleave_traces([a, b])]
        assert order == [(0, 0), (1, 1), (0, 0), (1, 1)]

    def test_uneven_lengths(self):
        a = [TraceRecord(pc=0, address=i) for i in range(3)]
        b = [TraceRecord(pc=1, address=0)]
        cores = [core for core, _ in interleave_traces([a, b])]
        assert cores == [0, 1, 0, 0]

    def test_empty_traces(self):
        assert list(interleave_traces([[], []])) == []

    def test_single_core(self):
        a = [TraceRecord(pc=0, address=i) for i in range(3)]
        assert len(list(interleave_traces([a]))) == 3
