"""Tests for the experiment harness (selector registry, suite runners)."""

import pytest

from repro.experiments.common import (
    SELECTOR_NAMES,
    add_geomean_rows,
    format_table,
    geomean,
    make_selector,
    run_benchmark,
    speedup_suite,
)
from repro.workloads.profiles import profile

MB = 1 << 20


def tiny_profiles():
    return {
        "tiny_stream": profile("tiny_stream", "test", True, 0.3, [
            (1.0, "stream", {"footprint": 8 * MB, "run_length": 400}),
        ]),
        "tiny_compute": profile("tiny_compute", "test", False, 0.15, [
            (1.0, "stride", {"stride": 64, "footprint": 256 * 1024, "dwell": 2}),
        ]),
    }


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)


class TestSelectorRegistry:
    @pytest.mark.parametrize("name", SELECTOR_NAMES)
    def test_paper_selectors_constructible(self, name):
        selector = make_selector(name)
        assert selector.prefetchers

    def test_selectors_get_fresh_prefetchers(self):
        a = make_selector("alecto")
        b = make_selector("alecto")
        assert a.prefetchers[0] is not b.prefetchers[0]

    def test_temporal_variant(self):
        selector = make_selector("alecto", with_temporal=True)
        assert any(p.is_temporal for p in selector.prefetchers)

    def test_alternate_composite(self):
        selector = make_selector("ipcp", composite="gs_berti_cplx")
        names = {p.name for p in selector.prefetchers}
        assert names == {"stream", "berti", "cplx"}

    def test_ablation_variant(self):
        selector = make_selector("alecto_fix")
        assert selector.config.fixed_degree == 6
        assert selector.name == "alecto_fix"

    def test_ppf_variants_differ_in_threshold(self):
        aggressive = make_selector("ppf_aggressive")
        conservative = make_selector("ppf_conservative")
        assert aggressive.threshold > conservative.threshold

    def test_triangel_requires_temporal(self):
        with pytest.raises(ValueError):
            make_selector("triangel")

    def test_single_prefetcher_configs(self):
        assert len(make_selector("pmp_only").prefetchers) == 1
        assert len(make_selector("berti_only").prefetchers) == 1

    def test_unknown_selector(self):
        with pytest.raises(ValueError):
            make_selector("oracle")


class TestSuiteRunner:
    def test_speedup_suite_shape(self):
        rows = speedup_suite(
            tiny_profiles(), ["ipcp", "alecto"], accesses=1500, seed=1
        )
        assert set(rows) == {"tiny_stream", "tiny_compute"}
        assert set(rows["tiny_stream"]) == {"ipcp", "alecto"}
        assert all(v > 0 for row in rows.values() for v in row.values())

    def test_run_benchmark_baseline(self):
        result = run_benchmark(
            tiny_profiles()["tiny_stream"], None, accesses=500
        )
        assert result.selector_name == "none"

    def test_add_geomean_rows(self):
        profiles = tiny_profiles()
        rows = speedup_suite(profiles, ["alecto"], accesses=1000, seed=1)
        out = add_geomean_rows(rows, profiles)
        assert "Geomean-Mem" in out and "Geomean-All" in out
        # Mem geomean uses only the memory-intensive benchmark.
        assert out["Geomean-Mem"]["alecto"] == pytest.approx(
            rows["tiny_stream"]["alecto"]
        )

    def test_format_table(self):
        text = format_table({"b": {"alecto": 1.234}})
        assert "alecto" in text and "1.234" in text
        assert format_table({}) == "(empty)"
