"""Tests for the Berti-style local-delta prefetcher."""

from repro.common.types import DemandAccess
from repro.prefetchers.berti import BertiPrefetcher


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


class TestDeltaSelection:
    def test_dominant_delta_promoted(self):
        pf = BertiPrefetcher()
        produced = []
        for i in range(40):
            produced = pf.train(access(i * 3), degree=1)
        assert produced
        # All observed local deltas are multiples of 3; Berti prefers the
        # larger (more timely) ones.
        delta = produced[0].line - 39 * 3
        assert delta > 0 and delta % 3 == 0

    def test_no_issue_before_evaluation(self):
        pf = BertiPrefetcher()
        produced = []
        for i in range(8):  # below the evaluation period
            produced = pf.train(access(i * 3), degree=2)
        assert produced == []

    def test_degree_stacks_best_delta(self):
        pf = BertiPrefetcher()
        produced = []
        for i in range(40):
            produced = pf.train(access(i * 3), degree=3)
        lines = [c.line for c in produced]
        last = 39 * 3
        assert len(lines) == 3
        assert all(line > last and (line - last) % 3 == 0 for line in lines)

    def test_random_stream_stays_quiet(self):
        import random

        rng = random.Random(9)
        pf = BertiPrefetcher()
        produced = []
        for _ in range(80):
            produced = pf.train(access(rng.randrange(10**6)), degree=2)
        assert produced == []

    def test_confidence_reflects_ratio(self):
        pf = BertiPrefetcher()
        for i in range(40):
            pf.train(access(i * 3), degree=1)
        assert pf.prediction_confidence() > 0.5


class TestWouldHandle:
    def test_active_pc_claimed(self):
        pf = BertiPrefetcher()
        for i in range(40):
            pf.train(access(i * 3), degree=0)
        assert pf.would_handle(access(0))

    def test_inactive_pc_not_claimed(self):
        assert not BertiPrefetcher().would_handle(access(0, pc=0x90))


class TestAccounting:
    def test_single_table(self):
        assert len(BertiPrefetcher().tables()) == 1

    def test_training_occurrences(self):
        pf = BertiPrefetcher()
        for i in range(5):
            pf.train(access(i), degree=0)
        assert pf.training_occurrences == 5
