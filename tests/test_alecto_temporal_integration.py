"""Integration tests for Alecto managing a temporal prefetcher (Sec. IV-F).

The paper's Fig. 6 taxonomy: Alecto should funnel only frequent-recurrence
temporal PCs into the temporal prefetcher's metadata table — non-temporal
PCs and PCs already covered by non-temporal prefetchers get filtered by
events 3 and 1 respectively.
"""

import pytest

from repro.prefetchers import TemporalPrefetcher, make_composite
from repro.selection import AlectoSelection
from repro.selection.bandit import BanditSelection
from repro.sim import simulate
from repro.workloads.profiles import profile

MB = 1 << 20


def temporal_workload():
    """Temporal recurrence + stream + noise: the Fig. 6 population."""
    return profile("fig6", "test", True, 0.3, [
        (0.40, "temporal", {"sequence_length": 900, "footprint": 16 * MB, "dwell": 1}),
        (0.35, "stream", {"footprint": 16 * MB, "run_length": 500}),
        (0.25, "random", {"footprint": 2 * MB, "pc_count": 12}),
    ])


def run_with(selector_cls, trace, **kwargs):
    prefetchers = make_composite() + [TemporalPrefetcher(metadata_bytes=64 * 1024)]
    if selector_cls is BanditSelection:
        selector = BanditSelection(prefetchers, train_on_prefetches=True, **kwargs)
    else:
        selector = selector_cls(prefetchers, **kwargs)
    result = simulate(trace, selector)
    return selector, result


class TestMetadataFiltering:
    @pytest.fixture(scope="class")
    def runs(self):
        trace = temporal_workload().generate(12000, seed=3)
        alecto, alecto_result = run_with(AlectoSelection, trace)
        bandit, bandit_result = run_with(BanditSelection, trace)
        return alecto, alecto_result, bandit, bandit_result

    def test_alecto_trains_temporal_less(self, runs):
        alecto, _, bandit, _ = runs
        assert (
            alecto.prefetcher("temporal").training_occurrences
            < bandit.prefetcher("temporal").training_occurrences
        )

    def test_alecto_temporal_usefulness_not_worse(self, runs):
        _, alecto_result, _, bandit_result = runs
        alecto_useful = alecto_result.useful_by_prefetcher.get("temporal", 0)
        bandit_useful = bandit_result.useful_by_prefetcher.get("temporal", 0)
        # Less training must not mean fewer useful temporal prefetches.
        assert alecto_useful >= 0.7 * bandit_useful

    def test_metadata_pressure_reduced(self, runs):
        alecto, _, bandit, _ = runs
        alecto_evictions = alecto.prefetcher("temporal")._metadata.stats.evictions
        bandit_evictions = bandit.prefetcher("temporal")._metadata.stats.evictions
        assert alecto_evictions < bandit_evictions

    def test_temporal_blocked_on_stream_pcs(self, runs):
        alecto, _, _, _ = runs
        # At least one PC should have the temporal prefetcher blocked
        # while a non-temporal prefetcher is aggressive (event-1 filter).
        found = False
        for _, entry in alecto.allocation_table._table.items():
            temporal_state = entry.states[3]
            others_aggressive = any(s.is_aggressive for s in entry.states[:3])
            if others_aggressive and temporal_state.is_blocked:
                found = True
        assert found
