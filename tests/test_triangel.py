"""Tests for the Triangel-style temporal training filter."""

import pytest

from repro.common.types import DemandAccess
from repro.prefetchers import make_composite
from repro.prefetchers.temporal import TemporalPrefetcher
from repro.selection.triangel import _CLASSIFY_AFTER, TriangelSelection


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


def make_triangel(**kwargs):
    prefetchers = make_composite() + [TemporalPrefetcher(metadata_bytes=64 * 1024)]
    return TriangelSelection(prefetchers, **kwargs)


class TestConstruction:
    def test_requires_exactly_one_temporal(self):
        with pytest.raises(ValueError):
            TriangelSelection(make_composite())

    def test_storage_includes_sampler(self):
        assert make_triangel().storage_bits >= TriangelSelection.SAMPLER_STORAGE_BITS


class TestClassification:
    def test_recurring_pc_allowed(self):
        selector = make_triangel()
        temporal = selector.temporal
        sequence = list(range(100))  # period 100 < sampler horizon
        for lap in range(6):
            for line in sequence:
                decisions = selector.allocate(access(line))
        names = [d.prefetcher.name for d in selector.allocate(access(0))]
        assert "temporal" in names

    def test_non_recurring_pc_filtered(self):
        selector = make_triangel()
        for line in range(_CLASSIFY_AFTER * 4):  # pure stream, never recurs
            selector.allocate(access(line))
        names = [d.prefetcher.name for d in selector.allocate(access(10**6))]
        assert "temporal" not in names

    def test_rare_recurrence_filtered(self):
        selector = make_triangel()
        # Period far beyond the sampler horizon.
        period = 50_000
        for i in range(_CLASSIFY_AFTER * 3):
            selector.allocate(access((i * 997) % period))
        names = [d.prefetcher.name for d in selector.allocate(access(0))]
        assert "temporal" not in names

    def test_optimistic_before_classification(self):
        selector = make_triangel()
        names = [d.prefetcher.name for d in selector.allocate(access(0))]
        assert "temporal" in names  # allowed until proven otherwise


class TestTemporalRouting:
    def test_temporal_candidates_marked_next_level(self):
        from repro.common.types import PrefetchCandidate

        selector = make_triangel()
        batch = [PrefetchCandidate(line=5, prefetcher="temporal", pc=0x400)]
        kept = selector.filter_prefetches(batch, access(0))
        assert kept and kept[0].to_next_level

    def test_l1_prefetch_traffic_trains_temporal(self):
        from repro.common.types import PrefetchCandidate

        selector = make_triangel()
        temporal = selector.temporal
        before = temporal.training_occurrences
        issued = [PrefetchCandidate(line=5, prefetcher="stream", pc=0x400)]
        selector.post_issue(access(0), issued)
        assert temporal.training_occurrences == before + 1
