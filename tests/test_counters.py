"""Unit and property tests for SaturatingCounter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SaturatingCounter


class TestConstruction:
    def test_defaults(self):
        counter = SaturatingCounter()
        assert counter.value == 0
        assert counter.minimum == 0
        assert counter.maximum == 255

    def test_initial_value_clamped_high(self):
        assert SaturatingCounter(999, 0, 7).value == 7

    def test_initial_value_clamped_low(self):
        assert SaturatingCounter(-5, 0, 7).value == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0, minimum=10, maximum=5)

    def test_negative_range_allowed(self):
        counter = SaturatingCounter(-3, minimum=-8, maximum=0)
        assert counter.value == -3


class TestIncrementDecrement:
    def test_increment_returns_new_value(self):
        counter = SaturatingCounter(1, 0, 3)
        assert counter.increment() == 2

    def test_increment_saturates(self):
        counter = SaturatingCounter(3, 0, 3)
        assert counter.increment() == 3
        assert counter.saturated_high

    def test_decrement_saturates(self):
        counter = SaturatingCounter(0, 0, 3)
        assert counter.decrement() == 0
        assert counter.saturated_low

    def test_increment_by_amount(self):
        counter = SaturatingCounter(0, 0, 10)
        assert counter.increment(4) == 4

    def test_decrement_by_amount_clamps(self):
        counter = SaturatingCounter(5, 0, 10)
        assert counter.decrement(100) == 0

    def test_reset(self):
        counter = SaturatingCounter(5, 0, 10)
        counter.reset()
        assert counter.value == 0

    def test_reset_to_value_clamps(self):
        counter = SaturatingCounter(0, 0, 10)
        counter.reset(42)
        assert counter.value == 10

    def test_int_conversion(self):
        assert int(SaturatingCounter(7, 0, 10)) == 7

    def test_repr_mentions_value(self):
        assert "7" in repr(SaturatingCounter(7, 0, 10))


@given(
    start=st.integers(-300, 300),
    steps=st.lists(st.sampled_from(["inc", "dec"]), max_size=60),
)
def test_value_always_within_bounds(start, steps):
    counter = SaturatingCounter(start, minimum=-8, maximum=8)
    for step in steps:
        if step == "inc":
            counter.increment()
        else:
            counter.decrement()
        assert -8 <= counter.value <= 8


@given(amount=st.integers(0, 1000))
def test_increment_then_decrement_round_trip_when_unsaturated(amount):
    counter = SaturatingCounter(0, 0, 10**9)
    counter.increment(amount)
    counter.decrement(amount)
    assert counter.value == 0
