"""Non-default cache-line-size support: geometry plumbing end to end.

The satellite fixes for hard-coded 64-byte shifts: selectors derive line
geometry from ``CacheConfig.line_bytes`` (via the simulator) instead of
assuming ``<< 6`` / ``>> 6``, so non-64B configs train temporal shadows
and PPF features on the correct lines and regions.
"""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import REGION_SHIFT, DemandAccess, PrefetchCandidate
from repro.prefetchers import make_composite
from repro.prefetchers.temporal import TemporalPrefetcher
from repro.registry import build_selector
from repro.selection.bandit import BanditSelection
from repro.selection.ppf import PPFSelection
from repro.selection.triangel import TriangelSelection
from repro.sim import simulate
from repro.workloads import get_profile


def config_with_line_bytes(line_bytes: int) -> SystemConfig:
    return SystemConfig(
        l1d=CacheConfig(
            size_bytes=32 * 1024, ways=8, latency=4, mshrs=16,
            line_bytes=line_bytes,
        ),
        l2=CacheConfig(
            size_bytes=256 * 1024, ways=8, latency=15, mshrs=32,
            line_bytes=line_bytes,
        ),
    )


class TestConfigGeometry:
    def test_line_shift(self):
        assert CacheConfig(1024, 2, 1, 4).line_shift == 6
        assert CacheConfig(1024, 2, 1, 4, line_bytes=128).line_shift == 7
        assert CacheConfig(1024, 2, 1, 4, line_bytes=32).line_shift == 5

    @pytest.mark.parametrize("bad", [0, -64, 48, 96])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(1024, 2, 1, 4, line_bytes=bad)

    def test_system_config_exposes_line_geometry(self):
        assert SystemConfig().line_bytes == 64
        assert SystemConfig().line_shift == 6
        config = config_with_line_bytes(128)
        assert config.line_bytes == 128
        assert config.line_shift == 7

    def test_llc_inherits_line_bytes(self):
        config = config_with_line_bytes(128)
        assert config.llc.line_bytes == 128
        # Same capacity, wider lines -> half the sets.
        assert config.llc.num_sets == SystemConfig().llc.num_sets // 2

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError, match="mixed cache-line sizes"):
            SystemConfig(
                l1d=CacheConfig(32 * 1024, 8, 4, 16, line_bytes=128),
                l2=CacheConfig(256 * 1024, 8, 15, 32, line_bytes=64),
            )


class TestSelectorGeometry:
    def test_default_geometry(self):
        selector = build_selector("alecto")
        assert selector.line_bytes == 64
        assert selector.line_shift == 6
        assert selector.region_line_shift == 6

    def test_set_line_bytes(self):
        selector = build_selector("alecto")
        selector.set_line_bytes(128)
        assert selector.line_shift == 7
        assert selector.region_line_shift == 5

    def test_invalid_line_bytes_rejected(self):
        selector = build_selector("alecto")
        with pytest.raises(ValueError, match="power of two"):
            selector.set_line_bytes(96)

    def test_wrappers_forward_geometry(self):
        ppf = PPFSelection(make_composite())
        ppf.set_line_bytes(128)
        assert ppf._ipcp.line_shift == 7
        triangel = TriangelSelection(
            make_composite() + [TemporalPrefetcher(metadata_bytes=32 * 1024)]
        )
        triangel.set_line_bytes(128)
        assert triangel._ipcp.line_shift == 7

    def test_simulator_propagates_config_geometry(self):
        trace = get_profile("gcc").generate(200, seed=1)
        selector = build_selector("alecto")
        simulate(trace, selector, config=config_with_line_bytes(128))
        assert selector.line_bytes == 128


def _capture_temporal_training(temporal):
    captured = []

    def train(access, degree=0):
        captured.append(access)
        return []

    temporal.train = train
    return captured


class TestShadowTraining:
    @pytest.mark.parametrize("line_bytes,shift", [(64, 6), (128, 7), (32, 5)])
    def test_bandit_shadow_uses_config_line_size(self, line_bytes, shift):
        temporal = TemporalPrefetcher(metadata_bytes=32 * 1024)
        bandit = BanditSelection(
            make_composite() + [temporal], train_on_prefetches=True
        )
        bandit.set_line_bytes(line_bytes)
        captured = _capture_temporal_training(temporal)

        line = 0x1234
        access = DemandAccess(pc=0x400, address=line << shift)
        bandit.post_issue(
            access, [PrefetchCandidate(line=line, prefetcher="stream", pc=0x400)]
        )
        (shadow,) = captured
        assert shadow.address == line << shift
        assert shadow.line == line
        assert shadow.region == (line << shift) >> REGION_SHIFT

    @pytest.mark.parametrize("line_bytes,shift", [(64, 6), (128, 7)])
    def test_triangel_shadow_uses_config_line_size(self, line_bytes, shift):
        temporal = TemporalPrefetcher(metadata_bytes=32 * 1024)
        triangel = TriangelSelection(make_composite() + [temporal])
        triangel.set_line_bytes(line_bytes)
        captured = _capture_temporal_training(temporal)

        line = 0x2BCD
        access = DemandAccess(pc=0x404, address=line << shift)
        triangel.post_issue(
            access, [PrefetchCandidate(line=line, prefetcher="stream", pc=0x404)]
        )
        (shadow,) = captured
        assert shadow.address == line << shift
        assert shadow.line == line
        assert shadow.region == (line << shift) >> REGION_SHIFT


class TestPPFFeatures:
    def test_region_feature_tracks_line_size(self):
        ppf = PPFSelection(make_composite())
        access = DemandAccess(pc=0x400, address=0)
        candidate = PrefetchCandidate(line=0b1010_1100_0000, prefetcher="stream",
                                      pc=0x400)
        default = ppf._features(candidate, access)
        assert default[2] == (candidate.line >> 6) & 0xFF

        ppf.set_line_bytes(128)
        wide = ppf._features(candidate, access)
        assert wide[2] == (candidate.line >> 5) & 0xFF


class TestEndToEndSmoke:
    @pytest.mark.parametrize("line_bytes", [32, 128])
    # (ppf_conservative, not ppf_aggressive: the aggressive threshold
    # admits nothing on a short trace regardless of line size.)
    @pytest.mark.parametrize("spec", ["alecto", "bandit6", "ppf_conservative"])
    def test_non_default_line_bytes_runs(self, line_bytes, spec):
        config = config_with_line_bytes(line_bytes)
        trace = get_profile("mcf").generate(1500, seed=1)
        baseline = simulate(trace, None, config=config)
        assert baseline.ipc > 0
        result = simulate(trace, build_selector(spec), config=config)
        assert result.ipc > 0
        assert result.metrics.issued > 0

    def test_non_default_line_bytes_with_temporal(self):
        config = config_with_line_bytes(128)
        trace = get_profile("mcf").generate(1500, seed=1)
        selector = build_selector("bandit6", with_temporal=True)
        result = simulate(trace, selector, config=config)
        assert result.ipc > 0
        assert selector.line_shift == 7

    def test_default_config_unchanged(self):
        # The plumbing is identity for Table-I 64-byte lines.
        trace = get_profile("gcc").generate(1000, seed=1)
        result = simulate(trace, build_selector("alecto"))
        again = simulate(trace, build_selector("alecto"))
        assert result.ipc == again.ipc
