"""Tests for the adversarial scenario search (repro.fuzz)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.objectives import build_objective, list_objectives
from repro.fuzz.search import _minimize, run_fuzz
from repro.fuzz.space import (
    Choice,
    DrawRng,
    IntRange,
    factory_param_space,
    render_workload_spec,
    searchable_factories,
)
from repro.registry import build_workload
from repro.workloads.profiles import BenchmarkProfile


class TestIntRange:
    def test_contains_respects_bounds_and_grid(self):
        r = IntRange(100, 800, step=100)
        assert r.contains(100) and r.contains(800) and r.contains(300)
        assert not r.contains(99) and not r.contains(801)
        assert not r.contains(150)  # off-grid
        assert not r.contains(True)  # bool is not an int here
        assert not r.contains(2.0)

    def test_clamp_snaps_to_grid(self):
        r = IntRange(100, 800, step=100)
        assert r.clamp(0) == 100
        assert r.clamp(10_000) == 800
        assert r.clamp(149) == 100
        assert r.clamp(151) == 200

    def test_sample_covers_endpoints(self):
        r = IntRange(2, 4)
        assert r.sample(0.0) == 2
        assert r.sample(0.999) == 4
        assert all(r.contains(r.sample(u / 10)) for u in range(10))

    def test_mutate_always_moves_when_possible(self):
        r = IntRange(0, 10)
        for u in (0.0, 0.1, 0.49, 0.5, 0.9, 0.999):
            for value in (0, 5, 10):
                moved = r.mutate(value, u)
                assert r.contains(moved)
                assert moved != value

    def test_midpoint_stays_in_domain(self):
        r = IntRange(100, 800, step=100)
        assert r.midpoint(800, 100) == 500  # 450 snaps to the grid
        assert r.contains(r.midpoint(800, 100))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IntRange(5, 4)


class TestChoice:
    def test_sample_and_mutate(self):
        c = Choice((2, 3, 4))
        assert c.sample(0.0) == 2
        assert c.sample(0.999) == 4
        assert c.mutate(3, 0.0) in (2, 4)
        assert c.mutate(3, 0.0) != 3

    def test_midpoint_is_target(self):
        assert Choice((1, 2)).midpoint(1, 2) == 2


class TestDrawRng:
    def test_pure_function_of_seed_and_tag(self):
        a, b = DrawRng(7), DrawRng(7)
        assert a.draw("x|1") == b.draw("x|1")
        assert DrawRng(8).draw("x|1") != a.draw("x|1")
        assert a.draw("x|1") != a.draw("x|2")
        assert 0.0 <= a.draw("anything") < 1.0

    def test_pick_deterministic(self):
        rng = DrawRng(3)
        items = ["a", "b", "c"]
        assert rng.pick("t", items) == rng.pick("t", items)
        with pytest.raises(ValueError):
            rng.pick("t", [])


class TestParamSpaces:
    def test_scenario_factories_declare_spaces(self):
        names = searchable_factories()
        assert "phased" in names and "drifting" in names

    def test_defaults_are_in_domain(self):
        from repro.registry import spec_defaults

        for factory in searchable_factories():
            space = factory_param_space(factory)
            defaults = spec_defaults("workload", factory)
            for param, domain in space.items():
                assert domain.contains(defaults[param]), (
                    f"{factory}.{param} default {defaults[param]!r} "
                    f"outside its declared domain"
                )

    def test_render_workload_spec_round_trips(self):
        spec = render_workload_spec("phased", {"regimes": 2, "period": 400})
        assert spec == "phased:period=400,regimes=2"
        assert build_workload(spec).name == "phased[period=400,regimes=2]"


def _domain_points(factory):
    """Hypothesis strategy: one in-domain point of ``factory``'s space."""
    space = factory_param_space(factory)
    return st.fixed_dictionaries(
        {
            name: st.floats(0.0, 1.0, exclude_max=True).map(domain.sample)
            for name, domain in space.items()
        }
    )


class TestParamSpaceContract:
    """Every in-domain point builds a valid BenchmarkProfile."""

    @settings(max_examples=25, deadline=None)
    @given(point=_domain_points("phased"))
    def test_phased_domain_is_honest(self, point):
        self._check("phased", point)

    @settings(max_examples=25, deadline=None)
    @given(point=_domain_points("drifting"))
    def test_drifting_domain_is_honest(self, point):
        self._check("drifting", point)

    def _check(self, factory, point):
        space = factory_param_space(factory)
        for name, value in point.items():
            assert space[name].contains(value)
        profile = build_workload(render_workload_spec(factory, point))
        assert isinstance(profile, BenchmarkProfile)
        # Pattern weights normalize: the mixture is a distribution.
        assert sum(spec.weight for spec in profile.patterns) == pytest.approx(1.0)
        # Generate/stream parity on a short prefix.
        materialized = profile.generate(120, seed=3)
        streamed = list(profile.stream(120, seed=3))
        assert materialized == streamed


class TestUnknownFactoryParameter:
    """build_workload('phased:perod=...') must be a did-you-mean
    ValueError naming the valid params, not a bare TypeError."""

    def test_misspelled_parameter(self):
        with pytest.raises(ValueError) as exc_info:
            build_workload("phased:perod=2000")
        message = str(exc_info.value)
        assert "perod" in message
        assert "period, regimes" in message
        assert "did you mean: period" in message

    def test_wholly_unknown_parameter(self):
        with pytest.raises(ValueError) as exc_info:
            build_workload("drifting:bananas=3")
        assert "stride" in str(exc_info.value)

    def test_valid_parameters_still_build(self):
        assert build_workload("drifting:stride=128") is not None

    def test_static_profile_error_unchanged(self):
        with pytest.raises(ValueError, match="static profile"):
            build_workload("mcf:period=3")


class TestObjectives:
    def test_registry_and_spec_canonicalization(self):
        assert list_objectives() == ["collapse", "inversion", "regression"]
        assert build_objective("collapse").spec == "collapse"
        assert (
            build_objective("collapse:selector=alecto").spec == "collapse"
        )  # spelled-out default drops
        assert (
            build_objective("collapse:accuracy=0.3,selector=bandit6").spec
            == "collapse:accuracy=0.3,selector=bandit6"
        )

    def test_unknown_objective_and_parameter(self):
        with pytest.raises(ValueError, match="did you mean: collapse"):
            build_objective("colapse")
        with pytest.raises(ValueError, match="margin"):
            build_objective("inversion:margn=0.1")

    def test_collapse_needs_sane_thresholds(self):
        with pytest.raises(ValueError):
            build_objective("collapse:accuracy=0.0")

    def test_regression_rejects_selector_in_statics(self):
        with pytest.raises(ValueError):
            build_objective("regression:selector=pmp_only")


class TestMinimizer:
    """The greedy minimizer shrinks a planted objective to its minimal
    parameters: superfluous params return to their defaults, the
    load-bearing one bisects to its exact firing boundary."""

    def test_shrinks_planted_objective(self):
        space = {"a": IntRange(0, 100), "b": IntRange(0, 100)}
        defaults = {"a": 0, "b": 0}
        probes = []

        def fires(point):
            probes.append(dict(point))
            return point["a"] >= 30

        minimal = _minimize({"a": 80, "b": 50}, defaults, space, fires)
        assert minimal == {"a": 30, "b": 0}

    def test_point_already_minimal_is_untouched(self):
        space = {"a": IntRange(0, 100)}

        def fires(point):
            return point["a"] >= 30

        assert _minimize({"a": 30}, {"a": 0}, space, fires) == {"a": 30}

    def test_default_firing_point_collapses_to_defaults(self):
        space = {"a": IntRange(0, 100), "b": IntRange(0, 100)}
        minimal = _minimize(
            {"a": 70, "b": 20}, {"a": 0, "b": 0}, space, lambda point: True
        )
        assert minimal == {"a": 0, "b": 0}


class TestFuzzCli:
    def test_bad_budget_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--budget", "0", "--no-store"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_unknown_objective_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--objective", "colapse", "--no-store"]) == 2
        assert "did you mean: collapse" in capsys.readouterr().err

    def test_unknown_factory_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--factory", "mcf", "--no-store"]) == 2
        assert "param_space" in capsys.readouterr().err

    def test_json_envelope_and_exit_codes(self, capsys, tmp_path):
        from repro.cli import main

        # A strict objective that cannot fire => exit 0, empty finds.
        code = main([
            "fuzz", "--budget", "2", "--seed", "1", "--json",
            "--accesses", "300", "--factory", "drifting",
            "--objective", "collapse:accuracy=0.001,coverage=0.001",
            "--store", str(tmp_path / "store"),
        ])
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.cli-output.v1"
        assert document["command"] == "fuzz"
        assert document["data"]["finds"] == []
        assert document["data"]["simulations"] > 0
        assert code == 0

    def test_write_corpus_merges(self, capsys, tmp_path):
        from repro.cli import main

        corpus = tmp_path / "corpus.json"
        # A trivially-firing objective guarantees at least one find.
        argv = [
            "fuzz", "--budget", "3", "--seed", "2", "--json",
            "--accesses", "300", "--factory", "drifting",
            "--objective", "collapse:accuracy=0.999,coverage=0.999",
            "--store", str(tmp_path / "store"),
            "--write-corpus", str(corpus),
        ]
        assert main(argv) == 3
        from repro.fuzz import corpus_entries

        first = corpus_entries(corpus)
        assert first
        capsys.readouterr()
        # Re-running merges idempotently: same finds, same corpus.
        assert main(argv) == 3
        assert corpus_entries(corpus) == first


class TestSearchDeterminism:
    #: Tiny search: one factory, one single-cell objective, short traces.
    KWARGS = dict(
        budget=5,
        seed=11,
        objectives=["collapse:accuracy=0.9,coverage=0.3"],
        factories=["drifting"],
        accesses=300,
        trace_seed=1,
    )

    def test_same_seed_same_finds_byte_for_byte(self):
        first = run_fuzz(**self.KWARGS)
        second = run_fuzz(**self.KWARGS)
        as_json = lambda report: json.dumps(  # noqa: E731
            [find.as_dict() for find in report.finds], sort_keys=True
        )
        assert as_json(first) == as_json(second)
        assert first.probes == second.probes
        assert first.evaluations == second.evaluations

    def test_different_seed_different_trajectory(self):
        first = run_fuzz(**self.KWARGS)
        other = run_fuzz(**{**self.KWARGS, "seed": 12})
        # The walks differ (different points probed) even if the find
        # lists happen to coincide.
        assert first.seed != other.seed
        assert first.budget == other.budget

    def test_unknown_factory_rejected(self):
        with pytest.raises(ValueError, match="param_space"):
            run_fuzz(budget=1, factories=["mcf"])

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            run_fuzz(budget=0)

    def test_finds_fire_and_are_minimized(self):
        report = run_fuzz(**self.KWARGS)
        for find in report.finds:
            assert find.objective.startswith("collapse")
            assert find.factory == "drifting"
            # The fully-specified spec spells out every searchable param.
            from repro.registry import parse_spec

            _, params = parse_spec(find.workload)
            assert set(params) == set(factory_param_space("drifting"))
            # And the minimized spec is its canonical reduction.
            from repro.registry import canonical_spec

            assert find.minimized == canonical_spec("workload", find.workload)
