"""Tests for the Micro-Armed-Bandit selection scheme."""

import pytest

from repro.common.types import DemandAccess
from repro.prefetchers import make_composite
from repro.selection.bandit import (
    ARM_STORAGE_BITS,
    OPTIMISTIC_INIT,
    BanditSelection,
    ExtendedBanditSelection,
    make_bandit3,
    make_bandit6,
)


def access(line, pc=0x400):
    return DemandAccess(pc=pc, address=line * 64)


class TestArms:
    def test_default_arm_space(self):
        bandit = BanditSelection(make_composite(), degree=6)
        assert len(bandit.arms) == 8
        assert (0, 0, 0) in bandit.arms
        assert (6, 6, 6) in bandit.arms

    def test_bandit3_and_6_factories(self):
        assert make_bandit3(make_composite()).degree == 3
        b6 = make_bandit6(make_composite())
        assert b6.degree == 6
        assert b6.name == "bandit6"

    def test_extended_bandit_arm_space(self):
        # (M+3)^P with M=5, P=3 -> 512 arms over degrees {0,3..9}.
        bandit = ExtendedBanditSelection(make_composite())
        assert len(bandit.arms) == 512
        degrees = {d for arm in bandit.arms for d in arm}
        assert degrees == {0, 3, 4, 5, 6, 7, 8, 9}

    def test_storage_scales_with_arms(self):
        b = BanditSelection(make_composite())
        e = ExtendedBanditSelection(make_composite())
        assert e.storage_bits - e._filter.storage_bits == 512 * ARM_STORAGE_BITS
        assert e.storage_bits > b.storage_bits

    def test_starts_all_on(self):
        bandit = BanditSelection(make_composite(), degree=6)
        decisions = bandit.allocate(access(0))
        assert [d.degree for d in decisions] == [6, 6, 6]


class TestLearning:
    def test_reward_updates_arm_value(self):
        bandit = BanditSelection(make_composite(), epoch_accesses=2, seed=1)
        bandit.allocate(access(0))
        bandit.allocate(access(1))
        assert bandit.needs_reward
        bandit.performance_sample(instructions=1000, cycles=500.0)
        assert not bandit.needs_reward
        assert bandit._arm_value  # some arm has a recorded value

    def test_greedy_converges_to_best_arm(self):
        bandit = BanditSelection(
            make_composite(), degree=6, epoch_accesses=1,
            epsilon=0.0, epsilon_floor=0.0, seed=3,
        )
        # Reward arm (0, 6, 0) heavily, others weakly.
        instructions, cycles = 0, 0.0
        for _ in range(200):
            bandit.allocate(access(0))
            reward = 5.0 if bandit._current_arm == (0, 6, 0) else 1.0
            instructions += int(1000 * reward)
            cycles += 1000.0
            bandit.performance_sample(instructions, cycles)
        values = bandit._arm_value
        assert max(values, key=values.get) == (0, 6, 0)

    def test_epsilon_decays_to_floor(self):
        bandit = BanditSelection(
            make_composite(), epoch_accesses=1, epsilon=0.5,
            epsilon_decay=0.5, epsilon_floor=0.1,
        )
        instructions = 0
        for i in range(20):
            bandit.allocate(access(i))
            instructions += 100
            bandit.performance_sample(instructions, float(i + 1) * 100)
        assert bandit.epsilon == pytest.approx(0.1)

    def test_degree_zero_arm_trains_but_silences(self):
        bandit = BanditSelection(make_composite(), arms=[(0, 0, 0)], epsilon=0.0)
        bandit._current_arm = (0, 0, 0)
        decisions = bandit.allocate(access(0))
        produced = []
        for d in decisions:
            produced.extend(d.prefetcher.train(access(0), d.degree))
        assert produced == []
        assert all(p.training_occurrences == 1 for p in bandit.prefetchers)


class TestArmSelection:
    """Pins the greedy branch's bounded optimistic initialization.

    Never-pulled arms default to :data:`OPTIMISTIC_INIT` (not
    ``float("inf")``): they are still explored before the bandit settles,
    but a measured value above the bound wins, so the documented epsilon
    schedule stays the only open-ended exploration mechanism.
    """

    @staticmethod
    def greedy_bandit():
        # epsilon=0 forces the greedy branch.
        return BanditSelection(
            make_composite(), degree=6, epsilon=0.0, epsilon_floor=0.0
        )

    def test_optimistic_init_is_bounded(self):
        bandit = self.greedy_bandit()
        assert bandit.optimistic_init == OPTIMISTIC_INIT
        assert OPTIMISTIC_INIT != float("inf")
        # Above the reward range: IPC on the 4-wide commit core is <= 4.
        assert OPTIMISTIC_INIT >= 4.0

    def test_unexplored_arm_preferred_within_reward_range(self):
        bandit = self.greedy_bandit()
        bandit._arm_value = {bandit.arms[0]: 1.0}
        # All other arms are optimistically valued; max() takes the first.
        assert bandit._select_arm() == bandit.arms[1]

    def test_measured_value_above_bound_beats_optimism(self):
        bandit = self.greedy_bandit()
        bandit._arm_value = {bandit.arms[3]: OPTIMISTIC_INIT + 1.0}
        # With float("inf") initialization this would pick an unexplored
        # arm; the bounded default correctly exploits the measured one.
        assert bandit._select_arm() == bandit.arms[3]

    def test_all_explored_picks_argmax(self):
        bandit = self.greedy_bandit()
        bandit._arm_value = {
            arm: float(i) / 10.0 for i, arm in enumerate(bandit.arms)
        }
        assert bandit._select_arm() == bandit.arms[-1]

    def test_no_values_yet_explores_randomly(self):
        bandit = self.greedy_bandit()
        assert not bandit._arm_value
        assert bandit._select_arm() in bandit.arms

    def test_epsilon_one_always_explores(self):
        bandit = BanditSelection(
            make_composite(), epsilon=1.0, epsilon_decay=1.0,
            epsilon_floor=1.0, seed=11,
        )
        bandit._arm_value = {bandit.arms[0]: 100.0}
        picks = {bandit._select_arm() for _ in range(64)}
        assert len(picks) > 1  # not locked to the greedy argmax


class TestTemporalShadowTraining:
    def test_prefetch_traffic_trains_temporal(self):
        from repro.prefetchers.temporal import TemporalPrefetcher

        prefetchers = make_composite() + [TemporalPrefetcher(metadata_bytes=32 * 1024)]
        bandit = BanditSelection(prefetchers, train_on_prefetches=True)
        temporal = bandit.prefetcher("temporal")
        before = temporal.training_occurrences
        from repro.common.types import PrefetchCandidate

        issued = [PrefetchCandidate(line=5, prefetcher="stream", pc=0x400)]
        bandit.post_issue(access(0), issued)
        assert temporal.training_occurrences == before + 1

    def test_temporal_own_output_not_self_training(self):
        from repro.prefetchers.temporal import TemporalPrefetcher

        prefetchers = make_composite() + [TemporalPrefetcher(metadata_bytes=32 * 1024)]
        bandit = BanditSelection(prefetchers, train_on_prefetches=True)
        temporal = bandit.prefetcher("temporal")
        before = temporal.training_occurrences
        from repro.common.types import PrefetchCandidate

        issued = [PrefetchCandidate(line=5, prefetcher="temporal", pc=0x400)]
        bandit.post_issue(access(0), issued)
        assert temporal.training_occurrences == before
