"""Quickstart: schedule a composite prefetcher with Alecto and measure it.

Builds the paper's default composite (GS stream + CS stride + PMP
spatial), runs a memory-intensive SPEC06 benchmark profile through the
Table-I memory hierarchy with and without prefetching, and prints the
headline metrics.

Run:  python examples/quickstart.py
"""

from repro import AlectoSelection, get_profile, make_composite, simulate


def main() -> None:
    # 1. A workload: 20k demand accesses of the GemsFDTD profile (the
    #    paper's Fig. 2 benchmark: interleaved stream and spatial PCs).
    profile = get_profile("GemsFDTD")
    trace = profile.generate(num_accesses=20_000, seed=1)

    # 2. A no-prefetching baseline for the speedup denominator.
    baseline = simulate(trace, selector=None, name="baseline")

    # 3. Alecto scheduling the composite prefetcher.
    selector = AlectoSelection(make_composite("gs_cs_pmp"))
    result = simulate(trace, selector, name="alecto")

    print(f"workload:            {profile.name} ({len(trace)} accesses)")
    print(f"baseline IPC:        {baseline.ipc:.3f}")
    print(f"Alecto IPC:          {result.ipc:.3f}")
    print(f"speedup:             {result.ipc / baseline.ipc:.3f}x")
    print(f"prefetch accuracy:   {result.metrics.accuracy:.2f}")
    print(f"prefetch coverage:   {result.metrics.coverage:.2f}")
    print(f"timely fraction:     {result.metrics.timeliness:.2f}")
    print(f"table misses:        {result.table_misses}")
    print(f"selector storage:    {selector.storage_bits} bits "
          f"({selector.storage_bits / 8 / 1024:.2f} KB)")

    # 4. Peek at what Alecto learned: per-PC prefetcher states.
    print("\nlearned allocation states (PC -> stream/stride/pmp):")
    for pc, entry in sorted(selector.allocation_table._table.items())[:8]:
        states = ", ".join(repr(state) for state in entry.states)
        print(f"  pc 0x{pc:x}: [{states}]")


if __name__ == "__main__":
    main()
