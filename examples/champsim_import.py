"""ChampSim-import quickstart: run an external trace as a workload.

Imports the tiny bundled ChampSim-format trace (``examples/data/
demo.champsim.gz``, ~2000 memory accesses of a database hash-join
shape), converts it to a provenance-stamped ``repro.trace.v1`` file,
and compares the baseline against two selectors on the identical
imported stream — the same pipeline ``repro trace import`` + ``repro
run <name>`` gives you on real SPEC/GAP ChampSim traces.

Run:  python examples/champsim_import.py
"""

import pathlib
import tempfile

from repro import simulate
from repro.cpu.champsim import import_trace
from repro.experiments.common import make_selector

BUNDLED_TRACE = pathlib.Path(__file__).parent / "data" / "demo.champsim.gz"


def main() -> None:
    # 1. Import: decode ChampSim 64-byte instruction records, project
    #    them onto memory accesses, and write a repro.trace.v1 file.
    #    (The CLI twin — which also registers the workload for later
    #    `repro run demo` / `repro list` — is:
    #        repro trace import examples/data/demo.champsim.gz --name demo)
    with tempfile.TemporaryDirectory() as imports_dir:
        workload = import_trace(
            str(BUNDLED_TRACE), name="demo", directory=imports_dir,
            register=False,
        )
        print(f"imported workload:  {workload.name!r} "
              f"({workload.accesses} accesses, "
              f"mem_ratio {workload.mem_ratio:.2f})")
        print(f"source sha256:      "
              f"{workload.meta['source_sha256'][:16]}…")

        # 2. The imported trace quacks like any benchmark profile:
        #    stream()/generate() feed simulate() directly.
        trace = workload.generate(workload.accesses)

    baseline = simulate(trace, None, name=workload.name)
    print(f"baseline IPC:       {baseline.ipc:.3f}")

    # 3. Every registered selector runs on the identical stream.
    for spec in ("ipcp", "alecto"):
        result = simulate(trace, make_selector(spec), name=workload.name)
        print(f"{spec:<8} IPC:       {result.ipc:.3f}  "
              f"(speedup {result.ipc / baseline.ipc:.3f}x, "
              f"accuracy {result.metrics.accuracy:.2f}, "
              f"coverage {result.metrics.coverage:.2f})")


if __name__ == "__main__":
    main()
