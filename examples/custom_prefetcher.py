"""Extending the library: register a prefetcher and schedule it with Alecto.

Implements a trivial next-N-line prefetcher against the public
:class:`repro.prefetchers.Prefetcher` interface, registers it (plus a
composite containing it) with :mod:`repro.registry`, and lets Alecto
decide, per PC, whether it deserves demand requests — next-line
prefetching is great on streams and junk on everything else, so Alecto's
Allocation Table should promote it on stream PCs and block it on random
PCs.  Once registered, the new composite works everywhere a composite
name does: ``build_selector``, ``make_selector``, ``speedup_suite``, and
the ``repro`` CLI.

Run:  python examples/custom_prefetcher.py
"""

from typing import List, Sequence

from repro import (
    build_selector,
    register_composite,
    register_prefetcher,
    simulate,
)
from repro.common.tables import SetAssociativeTable
from repro.common.types import DemandAccess
from repro.prefetchers import Prefetcher, StridePrefetcher
from repro.workloads.profiles import profile

MB = 1 << 20


@register_prefetcher("nextline")
class NextLinePrefetcher(Prefetcher):
    """Always prefetches the next ``degree`` sequential lines."""

    name = "nextline"

    def __init__(self):
        super().__init__()
        # Even a stateless prefetcher keeps a tiny recent-PC table so its
        # table traffic is measurable like everyone else's.
        self._table = SetAssociativeTable(16, ways=4, name="nextline_pcs")

    def _train(self, access: DemandAccess, degree: int) -> List[int]:
        self._table.lookup(access.pc)
        self._table.insert(access.pc, access.line)
        return [access.line + i + 1 for i in range(degree)]

    def tables(self) -> Sequence[SetAssociativeTable]:
        return (self._table,)


@register_composite("nextline_cs")
def nextline_composite():
    return [NextLinePrefetcher(), StridePrefetcher()]


def main() -> None:
    workload = profile("stream_plus_noise", "example", True, 0.3, [
        (0.6, "stream", {"footprint": 32 * MB, "run_length": 800}),
        (0.4, "random", {"footprint": 2 * MB, "pc_count": 8}),
    ])
    trace = workload.generate(15_000, seed=1)

    baseline = simulate(trace, None)
    selector = build_selector("alecto", composite="nextline_cs")
    result = simulate(trace, selector)

    print(f"speedup over no prefetching: {result.ipc / baseline.ipc:.3f}x")
    print(f"accuracy: {result.metrics.accuracy:.2f}")
    print("\nper-PC states (nextline, stride):")
    for pc, entry in sorted(selector.allocation_table._table.items()):
        print(f"  pc 0x{pc:x}: {[repr(s) for s in entry.states]}")
    print(
        "\nStream PCs should show the next-line prefetcher in IA "
        "(promoted); random-noise PCs should show IB (blocked) or UI."
    )


if __name__ == "__main__":
    main()
