"""Drive registered experiments programmatically and collect JSON results.

The experiment registry makes every paper figure/table a callable object
with declared parameters.  This example runs two of them at a reduced
scale, fans the second out over a small process pool, and writes the
structured :class:`~repro.experiments.runner.ExperimentResult` records to
``results.json`` — the same document ``python -m repro experiment --all
--json out.json`` produces for the full suite.

Run:  python examples/run_experiments.py
"""

from repro.experiments.runner import (
    SuiteRunner,
    render_result,
    write_results_json,
)
from repro.registry import get_experiment, list_experiments


def main() -> None:
    print(f"{len(list_experiments())} registered experiments\n")

    # 1. One experiment, explicit parameters.
    table3 = get_experiment("table3").run(num_prefetchers=3)
    print(render_result(table3))

    # 2. A figure at smoke scale, with its suite cells fanned out over a
    #    process pool (rows are identical to a serial run).
    runner = SuiteRunner(jobs=2)
    (fig08,) = runner.run_experiments(["fig08"], fast=True)
    print()
    print(render_result(fig08))

    # 3. Archive both as structured, schema-tagged JSON.
    document = write_results_json([table3, fig08], "results.json")
    print(f"\nwrote {len(document['results'])} results to results.json")


if __name__ == "__main__":
    main()
