"""Temporal prefetching with demand request allocation (a mini Fig. 13).

Reproduces the Section VI-D configuration: an L1 composite (GS+CS+PMP)
plus an L2 temporal prefetcher whose on-chip metadata table is the scarce
resource.  Three training policies are compared on one temporal-pattern
benchmark:

- Bandit: the temporal prefetcher trains on the entire L2 access stream;
- Triangel: a sampling classifier filters non-temporal and
  rare-recurrence PCs;
- Alecto: the Allocation Table routes only suitable demand requests.

Run:  python examples/temporal_prefetching.py
"""

from repro.experiments.common import make_selector
from repro.experiments.fig13_temporal import METADATA_SCALE, temporal_config
from repro.sim import simulate
from repro.workloads.temporal_suite import TEMPORAL_PROFILES

BENCHMARK = "omnetpp"
ACCESSES = 20_000
METADATA_LABEL_BYTES = 1024 * 1024  # the paper's 1 MB budget


def main() -> None:
    config = temporal_config()
    trace = TEMPORAL_PROFILES[BENCHMARK].generate(ACCESSES, seed=1)
    metadata_bytes = METADATA_LABEL_BYTES // METADATA_SCALE

    print(f"benchmark: {BENCHMARK}, metadata budget: 1 MB (paper label)")
    print(f"{'policy':<10}{'speedup':>9}{'issued':>9}{'useful':>9}{'trained':>9}")
    for label, with_tp, without_tp in (
        ("bandit", "bandit6", "bandit6"),
        ("triangel", "triangel", "ipcp"),
        ("alecto", "alecto", "alecto"),
    ):
        base = simulate(trace, make_selector(without_tp), config=config)
        selector = make_selector(
            with_tp, with_temporal=True, temporal_bytes=metadata_bytes
        )
        full = simulate(trace, selector, config=config)
        temporal = selector.prefetcher("temporal")
        print(
            f"{label:<10}"
            f"{full.ipc / base.ipc:>9.3f}"
            f"{full.issued_by_prefetcher.get('temporal', 0):>9}"
            f"{full.useful_by_prefetcher.get('temporal', 0):>9}"
            f"{temporal.training_occurrences:>9}"
        )
    print(
        "\nNote how Alecto trains the temporal prefetcher on far fewer "
        "requests while issuing as many useful prefetches — that is "
        "dynamic demand request allocation (paper Section IV-F)."
    )


if __name__ == "__main__":
    main()
