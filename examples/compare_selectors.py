"""Compare all five prefetcher selection algorithms (a mini Fig. 8).

Runs a handful of SPEC06 memory-intensive profiles under IPCP, DOL,
Bandit3, Bandit6 and Alecto — all scheduling the identical GS+CS+PMP
composite — and prints per-benchmark speedups plus the geomean.

Run:  python examples/compare_selectors.py
"""

from repro.experiments.common import SELECTOR_NAMES, geomean, make_selector
from repro.sim import simulate
from repro.workloads import get_profile

BENCHMARKS = ("libquantum", "GemsFDTD", "milc", "sphinx3", "bzip2", "leslie3d")
ACCESSES = 12_000


def main() -> None:
    header = f"{'benchmark':<12}" + "".join(f"{s:>10}" for s in SELECTOR_NAMES)
    print(header)
    print("-" * len(header))
    per_selector = {name: [] for name in SELECTOR_NAMES}
    for bench in BENCHMARKS:
        trace = get_profile(bench).generate(ACCESSES, seed=1)
        baseline = simulate(trace, None, name=bench)
        row = []
        for selector_name in SELECTOR_NAMES:
            result = simulate(trace, make_selector(selector_name), name=bench)
            speedup = result.ipc / baseline.ipc
            per_selector[selector_name].append(speedup)
            row.append(speedup)
        print(f"{bench:<12}" + "".join(f"{s:>10.3f}" for s in row))
    print("-" * len(header))
    print(
        f"{'geomean':<12}"
        + "".join(f"{geomean(per_selector[s]):>10.3f}" for s in SELECTOR_NAMES)
    )
    print(
        "\nExpected shape (paper Fig. 8): Alecto leads, Bandit6/Bandit3 in "
        "the middle, IPCP trails."
    )


if __name__ == "__main__":
    main()
