"""Link-check markdown docs: relative targets must exist, anchors resolve.

Usage:  python scripts/check_doc_links.py [FILE.md ...]
        python scripts/check_doc_links.py            # docs/*.md + README.md

Checks every ``[text](target)`` in the given files:

- ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
- relative file targets must exist on disk (resolved against the
  containing file's directory);
- ``#fragment`` parts — in-page or on a relative ``.md`` target — must
  match a heading's GitHub-style anchor in the target file.

Exits non-zero listing every broken link.  Stdlib only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — target captured up to the matching paren.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Inline code/fence stripper so example links in code blocks are ignored.
FENCE = re.compile(r"```.*?```", re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\s-]", "", heading)
    return re.sub(r"\s", "-", heading)


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {github_anchor(m.group(1)) for m in HEADING.finditer(text)}


def check_file(path: Path) -> list:
    problems = []
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link target {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.suffix != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets: not checked
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path}: anchor {fragment!r} not found in {resolved.name}"
                )
    return problems


def main(argv) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(arg) for arg in argv] or sorted(
        (root / "docs").glob("*.md")
    ) + [root / "README.md"]
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
