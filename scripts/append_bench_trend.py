#!/usr/bin/env python
"""Append a ``repro bench`` record to the retained bench-trend file.

The trend file is JSON-lines (``repro.bench-trend.v1``): one compact
line per (rev, date), carrying the throughput numbers that matter for
trend plots — the hot-loop accesses/sec headline plus accesses/sec per
case.  Nightly CI restores the file from the previous run's artifact,
appends tonight's record, and re-uploads it, so the artifact is a
growing per-commit history rather than a single point.

Keyed by rev: re-running a night for the same rev *replaces* that
rev's line instead of duplicating it, so a retried workflow cannot
skew a trend plot.

Usage::

    python scripts/append_bench_trend.py --record bench.json \
        --trend bench-trend.jsonl [--rev REV] [--date YYYY-MM-DD]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys

TREND_SCHEMA = "repro.bench-trend.v1"


def trend_entry(record: dict, rev: str, date: str) -> dict:
    """One compact trend line from a full ``repro.bench.v1`` record."""
    if record.get("schema") != "repro.bench.v1":
        raise ValueError(
            f"expected a repro.bench.v1 record, got {record.get('schema')!r}"
        )
    return {
        "schema": TREND_SCHEMA,
        "rev": rev,
        "date": date,
        "fast": record.get("fast", False),
        "python": record.get("python"),
        "hot_loop_accesses_per_sec": record["hot_loop_accesses_per_sec"],
        "cases": {
            f"{case['benchmark']}/{case['selector']}": case["accesses_per_sec"]
            for case in record.get("cases", [])
        },
    }


def load_trend(path: str) -> list:
    """Existing trend lines, oldest first; a missing file is empty."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if entry.get("schema") != TREND_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: unexpected schema "
                    f"{entry.get('schema')!r}"
                )
            entries.append(entry)
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(
        description="append a repro bench record to a JSON-lines trend file"
    )
    parser.add_argument(
        "--record", required=True, help="bench JSON written by `repro bench`"
    )
    parser.add_argument(
        "--trend", required=True,
        help="trend file to append to (created if missing)",
    )
    parser.add_argument(
        "--rev", default=None,
        help="revision key (default: the record's rev field)",
    )
    parser.add_argument(
        "--date", default=None,
        help="date key, YYYY-MM-DD (default: today, UTC)",
    )
    args = parser.parse_args()

    with open(args.record, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    rev = args.rev or record.get("rev") or "unknown"
    date = args.date or datetime.datetime.now(
        datetime.timezone.utc
    ).strftime("%Y-%m-%d")

    try:
        entries = load_trend(args.trend)
        entry = trend_entry(record, rev, date)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    replaced = any(existing["rev"] == rev for existing in entries)
    entries = [e for e in entries if e["rev"] != rev] + [entry]

    tmp = args.trend + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for existing in entries:
            handle.write(json.dumps(existing) + "\n")
    os.replace(tmp, args.trend)
    verb = "replaced rev" if replaced else "appended rev"
    print(
        f"{verb} {rev} ({date}): {len(entries)} trend point(s) in "
        f"{args.trend}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
