#!/usr/bin/env python
"""Time the simulation hot path and write a BENCH_<rev>.json record.

Thin wrapper around :mod:`repro.sim.bench`; identical to ``repro bench``.
Run from the repository root:

    PYTHONPATH=src python scripts/bench_sim.py [--fast] [--check BENCH_x.json]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.bench import main  # noqa: E402  (needs the sys.path shim)

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout was piped to a consumer that exited early (e.g. head);
        # not an error for a report-printing tool.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
